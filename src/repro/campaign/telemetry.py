"""Campaign telemetry: per-unit timing, counters and throughput.

The paper ran >1.5M RTL faults on a 12-node ModelSim cluster and
thousands of NVBitFI runs per application; at that scale a campaign is
only trustworthy if you can *watch* it — where the wall-clock goes,
which cells stall, how much of a resume was replayed from the journal
rather than re-run.  :class:`CampaignMetrics` is the collector the
execution engine feeds: one :class:`UnitRecord` per completed work unit
(duration, queue wait, worker id, cached flag, outcome tallies), plus
stage-level aggregates (units/s, injections/s, Masked/SDC/DUE running
totals, ETA).

The serialised form — ``kind: "campaign-metrics"`` — is one schema for
every producer: campaign runners write ``<journal>.metrics.json`` next
to each checkpoint, the pipeline additionally writes a combined
``metrics.json`` (``kind: "pipeline-metrics"``) per workdir, and the
``benchmarks/bench_*_parallel`` benchmarks emit their ``BENCH_*.json``
trajectories in the same format.  ``python -m repro stats <path>``
renders any of them.

Telemetry is strictly an observer: it never touches the campaign's
random streams, so merged reports stay bit-identical with metrics
enabled.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import CampaignError
from ..outcomes import outcome_attrs

__all__ = [
    "SCHEMA_KIND",
    "SCHEMA_VERSION",
    "CampaignMetrics",
    "UnitRecord",
    "discover_metrics",
    "emit_metrics",
    "load_metrics",
    "metrics_path_for",
    "render_stats",
    "resolve_metrics",
    "validate_metrics",
]

SCHEMA_KIND = "campaign-metrics"
PIPELINE_KIND = "pipeline-metrics"
SCHEMA_VERSION = 1

#: Outcome attribute names sniffed off any report type that carries them
#: (both :class:`~repro.rtl.reports.CampaignReport` and
#: :class:`~repro.swfi.campaign.PVFReport` do).  Derived from the shared
#: :class:`~repro.outcomes.Outcome` taxonomy, in enum order.
_OUTCOME_ATTRS = outcome_attrs()


@dataclass
class UnitRecord:
    """Telemetry of one completed work unit."""

    index: int
    label: str = ""
    size: int = 0
    seconds: float = 0.0        # wall-clock spent executing the unit
    queue_wait: float = 0.0     # submit -> execution start (pool lag)
    cached: bool = False        # replayed from the journal, not re-run
    worker: int = 0             # executing process id (0 = unknown)
    timeouts: int = 0           # wall-clock-guard DUEs inside the unit
    retries: int = 0            # reserved: engine does not retry yet
    outcomes: Dict[str, int] = field(default_factory=dict)
    injections: int = 0

    def to_dict(self) -> dict:
        from ..artifacts import codec_for

        return codec_for(UnitRecord).dump(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "UnitRecord":
        from ..artifacts import codec_for

        return codec_for(UnitRecord).load(payload)

    @property
    def cell(self) -> str:
        """Cell key: the unit label minus its intra-cell batch suffix."""
        return self.label.split(" [")[0] if self.label else str(self.index)


def _sniff_outcomes(report: Any) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for key, attr in _OUTCOME_ATTRS:
        value = getattr(report, attr, None)
        if isinstance(value, int):
            out[key] = value
    return out


def _sniff_timeouts(report: Any) -> int:
    """Count wall-clock-guard DUEs in reports that keep per-record data."""
    counter = getattr(report, "count_timeouts", None)
    if callable(counter):
        # columnar reports answer without materialising any record
        return int(counter())
    count = 0
    for record in getattr(report, "general", ()) or ():
        reason = getattr(record, "due_reason", None)
        if reason and "wall-clock" in reason:
            count += 1
    return count


class CampaignMetrics:
    """Accumulates per-unit telemetry for one campaign stage.

    The engine calls :meth:`record_unit` once per completed unit (cached
    replays included); everything else — rates, ETA, outcome totals,
    serialisation — is derived.  ``total_units`` is filled in by the
    engine when the plan is known.
    """

    def __init__(self, stage: str, total_units: Optional[int] = None,
                 meta: Optional[dict] = None) -> None:
        self.stage = stage
        self.total_units = total_units
        self.meta = dict(meta or {})
        self.units: List[UnitRecord] = []
        self._started = time.perf_counter()
        self._wall: Optional[float] = None

    # -- collection ---------------------------------------------------------
    def record_unit(self, index: int, label: str = "", size: int = 0,
                    report: Any = None, *, seconds: float = 0.0,
                    queue_wait: float = 0.0, cached: bool = False,
                    worker: Optional[int] = None) -> UnitRecord:
        """Record one finished unit, sniffing tallies off its report."""
        self._wall = None  # live again: un-freeze the wall-clock
        record = UnitRecord(
            index=index, label=label, size=size,
            seconds=max(0.0, seconds), queue_wait=max(0.0, queue_wait),
            cached=cached,
            worker=os.getpid() if worker is None else worker,
            timeouts=_sniff_timeouts(report) if report is not None else 0,
            outcomes=_sniff_outcomes(report) if report is not None else {},
            injections=int(getattr(report, "n_injections", 0) or 0),
        )
        self.units.append(record)
        return record

    def finish(self) -> None:
        """Stamp the stage wall-clock.

        Restamps on every call (always measuring from construction), so
        a collector reused across engine rounds — the adaptive PVF
        runner — keeps a wall-clock that covers all of them.
        """
        self._wall = time.perf_counter() - self._started

    # -- aggregates ---------------------------------------------------------
    @property
    def units_done(self) -> int:
        return len(self.units)

    @property
    def units_cached(self) -> int:
        return sum(1 for u in self.units if u.cached)

    @property
    def units_run(self) -> int:
        return self.units_done - self.units_cached

    def wall_seconds(self) -> float:
        if self._wall is not None:
            return self._wall
        return time.perf_counter() - self._started

    def outcome_totals(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for unit in self.units:
            for key, value in unit.outcomes.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def injections_total(self) -> int:
        return sum(u.injections for u in self.units)

    def timeouts_total(self) -> int:
        return sum(u.timeouts for u in self.units)

    def units_per_second(self) -> float:
        elapsed = self.wall_seconds()
        return self.units_done / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self) -> Optional[float]:
        """Remaining wall-clock estimate; None before any rate exists."""
        if self.total_units is None or not self.units_done:
            return None
        rate = self.units_per_second()
        if rate <= 0:
            return None
        return max(0, self.total_units - self.units_done) / rate

    def heartbeat(self) -> str:
        """One-line live telemetry for the progress stream."""
        parts = [f"{self.units_per_second():.1f} units/s"]
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"eta {eta:.0f}s")
        totals = self.outcome_totals()
        if totals:
            parts.append("M/S/D {masked}/{sdc}/{due}".format(
                masked=totals.get("masked", 0), sdc=totals.get("sdc", 0),
                due=totals.get("due", 0)))
        return " ".join(parts)

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        from ..artifacts import dump_body

        return dump_body(SCHEMA_KIND, self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignMetrics":
        from ..artifacts import load_artifact

        return load_artifact(SCHEMA_KIND, payload)

    def save(self, path: Union[str, Path]) -> Path:
        """Write the stage's ``metrics.json`` (schema-validated).

        The write goes through a sibling temp file + ``os.replace`` so
        concurrent readers — the service's HTTP handlers poll this file
        while the campaign runs — always see a complete JSON document,
        never a torn half-write.
        """
        self.finish()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(validate_metrics(self.to_dict()),
                             indent=2) + "\n"
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)
        return path


# -- schema -------------------------------------------------------------------
def validate_metrics(payload: dict) -> dict:
    """Check a ``campaign-metrics`` payload against the schema.

    Returns the payload unchanged on success so callers can chain it;
    raises :class:`~repro.errors.CampaignError` naming the offending
    field otherwise.  Extra keys are allowed — benchmarks attach their
    own ``bench`` section on top of the shared spine.  The schema itself
    lives in the :mod:`repro.artifacts` registry under this kind.
    """
    from ..artifacts import validate_artifact

    return validate_artifact(SCHEMA_KIND, payload)


def resolve_metrics(metrics: Optional["CampaignMetrics"],
                    checkpoint: Optional[Union[str, Path]],
                    stage: str) -> Optional["CampaignMetrics"]:
    """Checkpointed campaigns get telemetry by default (opt-in otherwise)."""
    if metrics is None and checkpoint is not None:
        return CampaignMetrics(stage=stage)
    return metrics


def emit_metrics(metrics: Optional["CampaignMetrics"],
                 checkpoint: Optional[Union[str, Path]]) -> None:
    """Write ``<journal>.metrics.json`` next to the checkpoint journal."""
    if metrics is not None and checkpoint is not None:
        metrics.save(metrics_path_for(checkpoint))


def metrics_path_for(journal: Union[str, Path]) -> Path:
    """Where a campaign's metrics land: next to its checkpoint journal.

    ``rtl_grid.jsonl`` -> ``rtl_grid.metrics.json``.
    """
    journal = Path(journal)
    stem = journal.name
    for suffix in (".jsonl", ".json"):
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
            break
    return journal.with_name(stem + ".metrics.json")


def load_metrics(path: Union[str, Path]) -> dict:
    """Load and validate one ``campaign-metrics`` JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"cannot load metrics from {path}: {exc}")
    return validate_metrics(payload)


def discover_metrics(target: Union[str, Path]) -> List[dict]:
    """Collect every stage-metrics payload under *target*.

    *target* may be a single metrics file (campaign or pipeline kind),
    a checkpoint journal (its sibling metrics file is used), or a
    workdir — in which case the combined ``metrics.json`` is preferred
    and ``*.metrics.json`` stage files are the fallback.
    """
    target = Path(target)
    if target.is_dir():
        combined = target / "metrics.json"
        if combined.exists():
            return discover_metrics(combined)
        stage_files = sorted(target.glob("*.metrics.json"))
        if not stage_files:
            raise CampaignError(
                f"no metrics.json or *.metrics.json under {target}")
        return [load_metrics(p) for p in stage_files]
    if not target.exists():
        raise CampaignError(f"no such metrics file or workdir: {target}")
    if target.suffix == ".jsonl":
        return discover_metrics(metrics_path_for(target))
    try:
        payload = json.loads(target.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"cannot load metrics from {target}: {exc}")
    if isinstance(payload, dict) and payload.get("kind") == PIPELINE_KIND:
        return [validate_metrics(stage)
                for stage in payload.get("stages", [])]
    return [validate_metrics(payload)]


# -- rendering ----------------------------------------------------------------
def _fmt_rate(value: float) -> str:
    return f"{value:.1f}" if value < 1000 else f"{value:.0f}"


def _stage_row(payload: dict) -> List[str]:
    outcomes = payload.get("outcomes", {})
    return [
        payload["stage"],
        str(payload["units_done"]),
        str(payload["units_cached"]),
        str(payload["injections"]),
        f"{payload['wall_seconds']:.2f}",
        _fmt_rate(payload["units_per_second"]),
        _fmt_rate(payload.get("injections_per_second", 0.0)),
        str(outcomes.get("masked", 0)),
        str(outcomes.get("sdc", 0)),
        str(outcomes.get("due", 0)),
    ]


def _render_table(headers: List[str], rows: List[List[str]],
                  indent: str = "") -> List[str]:
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              if rows else len(headers[i]) for i in range(len(headers))]
    lines = [indent + "  ".join(h.ljust(widths[i]) if i == 0 else
                                h.rjust(widths[i])
                                for i, h in enumerate(headers))]
    for row in rows:
        lines.append(indent + "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)))
    return lines


def render_stats(payloads: List[dict], per_cell: bool = True) -> str:
    """Render stage-summary and per-cell throughput tables."""
    headers = ["stage", "units", "cached", "inj", "wall s",
               "units/s", "inj/s", "masked", "sdc", "due"]
    lines = _render_table(headers, [_stage_row(p) for p in payloads])
    if per_cell:
        for payload in payloads:
            units = [UnitRecord.from_dict(u)
                     for u in payload.get("units", [])]
            if not units:
                continue
            cells: Dict[str, List[UnitRecord]] = {}
            for unit in units:
                cells.setdefault(unit.cell, []).append(unit)
            if len(cells) <= 1 and len(units) <= 1:
                continue
            rows = []
            for cell in sorted(cells):
                group = cells[cell]
                seconds = sum(u.seconds for u in group)
                injections = sum(u.injections for u in group)
                totals: Dict[str, int] = {}
                for unit in group:
                    for key, value in unit.outcomes.items():
                        totals[key] = totals.get(key, 0) + value
                rows.append([
                    cell,
                    str(len(group)),
                    str(sum(1 for u in group if u.cached)),
                    str(injections),
                    f"{seconds:.2f}",
                    _fmt_rate(injections / seconds) if seconds > 0
                    else "-",
                    str(totals.get("masked", 0)),
                    str(totals.get("sdc", 0)),
                    str(totals.get("due", 0)),
                ])
            lines.append("")
            lines.append(f"{payload['stage']} — per-cell throughput")
            lines.extend(_render_table(
                ["cell", "units", "cached", "inj", "exec s", "inj/s",
                 "masked", "sdc", "due"], rows, indent="  "))
    return "\n".join(lines)
