"""Level-agnostic campaign execution engine.

Both fault-injection levels of the paper share one execution problem:
a campaign is a long list of independent, seeded work units (a batch of
RTL faults against one grid cell, a batch of software injections into
one application) whose results must merge into a report that is
bit-identical no matter how the units were scheduled.  The paper solved
it with a 12-node ModelSim server; this module is the reusable software
equivalent, so neither ``repro.rtl`` nor ``repro.swfi`` owns its own
pool/checkpoint/guard machinery.

The engine owns:

* **Deterministic seed-indexed sharding** — a :class:`WorkUnit` carries
  the child seed derived from its global index, so randomness never
  depends on the worker count, completion order, or checkpoint
  boundaries (:func:`plan_batches` + :func:`repro.rng.spawn_seed_range`).
* **Process-pool execution with worker-local state** — each worker
  process builds its own simulator/injector once via a picklable
  ``state_factory`` and amortises it over every unit it executes.
* **JSONL checkpoint/resume** — completed units are journaled through a
  :class:`~repro.campaign.checkpoint.CampaignCheckpoint` and skipped on
  resume.
* **Per-unit wall-clock DUE guards** — :func:`wall_clock_limit` converts
  a runaway unit into a diagnosable timeout instead of a hung campaign.
* **Mergeable-report protocol** — reports implement
  :class:`Mergeable` (``merge_in``/``merge``/``to_dict``/``from_dict``);
  :func:`merge_ordered` folds per-unit reports in index order, which is
  what makes the merged report equal to the serial run's bit for bit.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

try:  # pragma: no cover - always present on python >= 3.8
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore

    def runtime_checkable(cls):  # type: ignore
        return cls

from ..errors import CampaignCancelled, CampaignError, ReproError
from ..rng import spawn_seed_range
from .checkpoint import CampaignCheckpoint
from .progress import ProgressReporter
from .telemetry import CampaignMetrics

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "Mergeable",
    "UnitTimeout",
    "WorkUnit",
    "merge_ordered",
    "plan_batches",
    "plan_units",
    "run_units",
    "wall_clock_limit",
]

#: Units per batch when the caller does not choose: small enough to
#: checkpoint / load-balance at a useful granularity, large enough that
#: a worker amortises its reference pass over many injections.
DEFAULT_BATCH_SIZE = 50


# -- report protocol ---------------------------------------------------------
@runtime_checkable
class Mergeable(Protocol):
    """What the engine requires of a campaign report.

    ``merge_in`` folds another report's tallies into this one (raising
    on incompatible reports); ``to_dict``/``from_dict`` round-trip the
    report through the JSONL checkpoint.  Classes usually add a
    ``merge`` classmethod on top; :func:`merge_ordered` uses it when
    present.
    """

    def merge_in(self, other: Any) -> None: ...

    def to_dict(self) -> dict: ...

    @classmethod
    def from_dict(cls, payload: dict) -> Any: ...


def merge_ordered(results: Mapping[int, Any],
                  empty: Optional[Callable[[], Any]] = None) -> Any:
    """Merge per-unit reports in unit-index order.

    Merging in index order — never completion order — is the invariant
    that makes a sharded campaign's merged report bit-identical to the
    serial run's for a fixed seed.  A zero-unit campaign (``total=0``)
    produces an empty result set: *empty* supplies the empty merged
    report for that case; without it the merge raises.
    """
    if not results:
        if empty is not None:
            return empty()
        raise CampaignError("cannot merge an empty result set")
    ordered = [results[index] for index in sorted(results)]
    cls = type(ordered[0])
    if hasattr(cls, "merge"):
        return cls.merge(ordered)
    merged = cls.from_dict(ordered[0].to_dict())  # do not mutate inputs
    for report in ordered[1:]:
        merged.merge_in(report)
    return merged


# -- batch planning ----------------------------------------------------------
def plan_batches(total: int, batch_size: Optional[int] = None) -> List[int]:
    """Split *total* units of work into deterministic batch sizes.

    The plan depends only on ``(total, batch_size)`` — never on the
    worker count — so serial and parallel executions of the same
    campaign share one batch/seed layout.
    """
    if total < 0:
        raise CampaignError("n_injections must be non-negative")
    size = DEFAULT_BATCH_SIZE if batch_size is None else batch_size
    if size < 1:
        raise CampaignError("batch_size must be at least 1")
    sizes = [size] * (total // size)
    if total % size:
        sizes.append(total % size)
    return sizes


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable slice of a campaign.

    ``index`` is the unit's global position in the campaign plan (and
    its merge rank); ``seed`` is the deterministic child seed its
    randomness must come from; ``size`` is how many injections/faults it
    covers; ``spec`` is an arbitrary picklable payload telling the unit
    runner *what* to run (cell coordinates, bench spec, ...).
    """

    index: int
    size: int
    seed: int
    spec: Any = None
    label: str = ""


def plan_units(total: int, seed: int,
               batch_size: Optional[int] = None,
               spec: Any = None,
               base_index: int = 0,
               label: str = "") -> List[WorkUnit]:
    """Shard *total* units of work into seed-indexed :class:`WorkUnit`\\ s.

    Unit ``base_index + i`` draws from child seed ``base_index + i`` of
    *seed* — the contract that keeps any contiguous re-planning (resume,
    parallel fan-out, adaptive growth) on the same random streams.
    """
    sizes = plan_batches(total, batch_size)
    seeds = spawn_seed_range(seed, base_index, len(sizes))
    return [
        WorkUnit(index=base_index + i, size=size, seed=unit_seed,
                 spec=spec,
                 label=label or f"batch {base_index + i}")
        for i, (size, unit_seed) in enumerate(zip(sizes, seeds))
    ]


# -- wall-clock guard --------------------------------------------------------
class UnitTimeout(ReproError):
    """A work unit exceeded its wall-clock budget."""


@contextmanager
def wall_clock_limit(seconds: Optional[float],
                     make_exception: Optional[
                         Callable[[float], BaseException]] = None):
    """Abort the enclosed block after *seconds* of wall-clock time.

    Uses an interval timer (SIGALRM), which covers runaway numpy loops a
    pure iteration guard cannot interrupt.  Degrades to a no-op when no
    limit is requested or signals are unavailable (non-main thread,
    platforms without SIGALRM) — worker processes run units on their
    main thread, so the guard is active there.  ``make_exception`` maps
    the budget to the exception to raise (default :class:`UnitTimeout`).

    Guards nest: an inner guard saves the outer guard's remaining
    budget and re-arms it on exit, so a pipeline-level guard wrapped
    around per-unit guards still fires.  While the inner guard is armed
    the outer one is suspended — an outer deadline that passes inside
    the inner block fires immediately after the inner guard exits.
    """
    if not seconds or seconds <= 0:
        yield
        return
    if (not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _timed_out(signum, frame):
        if make_exception is not None:
            raise make_exception(seconds)
        raise UnitTimeout(
            f"wall-clock guard: work unit exceeded {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _timed_out)
    # setitimer returns the outer guard's remaining (delay, interval):
    # that budget — minus the time this block consumes — must be
    # restored on exit, not cleared.
    outer_remaining, _ = signal.setitimer(signal.ITIMER_REAL,
                                          float(seconds))
    entered = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
        if outer_remaining > 0.0:
            elapsed = time.monotonic() - entered
            # an already-expired outer budget fires as soon as possible
            signal.setitimer(signal.ITIMER_REAL,
                             max(outer_remaining - elapsed, 1e-6))


# -- worker-process plumbing -------------------------------------------------
# One state per worker process: the expensive reference artefact (an SM
# model, a golden+profile pass) is built once per *worker*, not once per
# unit or — worse — per injection.
_WORKER_STATE: Any = None
_WORKER_RUN: Optional[Callable[[Any, WorkUnit], Any]] = None


def _worker_init(state_factory: Optional[Callable[[], Any]],
                 run_unit: Callable[[Any, WorkUnit], Any]) -> None:
    global _WORKER_STATE, _WORKER_RUN
    _WORKER_STATE = state_factory() if state_factory is not None else None
    _WORKER_RUN = run_unit


def _worker_call(unit: WorkUnit) -> Tuple[int, Any, Dict[str, float]]:
    # time.time() is comparable across processes on one host, so the
    # parent can derive queue wait from its own submit timestamp;
    # perf_counter deltas stay within this process.
    started_wall = time.time()
    started = time.perf_counter()
    report = _WORKER_RUN(_WORKER_STATE, unit)
    timing = {
        "seconds": time.perf_counter() - started,
        "started_wall": started_wall,
        "worker": os.getpid(),
    }
    return unit.index, report, timing


class _OrderedEmitter:
    """Deliver results to a consumer in unit-index order.

    Parallel units complete out of order; buffering the out-of-order
    window and flushing sequentially gives downstream consumers (the
    streaming syndrome-database builder) a deterministic input order
    while keeping memory bounded by the reorder window, not the
    campaign.
    """

    def __init__(self, indices: Sequence[int],
                 consume: Callable[[int, Any], None]) -> None:
        self._pending = sorted(indices)
        self._cursor = 0
        self._buffer: Dict[int, Any] = {}
        self._consume = consume

    def offer(self, index: int, report: Any) -> None:
        self._buffer[index] = report
        while (self._cursor < len(self._pending)
               and self._pending[self._cursor] in self._buffer):
            ready = self._pending[self._cursor]
            self._consume(ready, self._buffer.pop(ready))
            self._cursor += 1


# -- the engine --------------------------------------------------------------
def run_units(
    units: Sequence[WorkUnit],
    run_unit: Callable[[Any, WorkUnit], Any],
    *,
    n_jobs: int = 1,
    state_factory: Optional[Callable[[], Any]] = None,
    state: Any = None,
    checkpoint: Optional[CampaignCheckpoint] = None,
    consume: Optional[Callable[[int, Any], None]] = None,
    observer: Optional[Callable[[WorkUnit, Any], None]] = None,
    progress: Optional[ProgressReporter] = None,
    metrics: Optional[CampaignMetrics] = None,
    collect: bool = True,
    cancel: Optional[Callable[[], bool]] = None,
) -> Dict[int, Any]:
    """Execute campaign work units serially or on a process pool.

    ``run_unit(state, unit)`` produces one report per unit; it and
    ``state_factory`` must be picklable (module-level callables or
    ``functools.partial`` of them) when ``n_jobs > 1``.  Serial runs use
    *state* if given, else lazily call ``state_factory`` once.

    Units already present in *checkpoint* are replayed, not re-run; new
    completions are journaled as they land.  ``consume`` receives every
    unit's report **in index order** (replayed ones included) — the
    streaming hook for per-batch downstream processing.  ``observer``
    receives ``(unit, report)`` in the same index order (cached units
    included) — the hook adaptive controllers use to track per-cell
    tallies without owning the result dict; unlike ``consume`` it is
    handed the full :class:`WorkUnit`, so it can attribute a report to
    the cell in ``unit.spec``.  ``collect=False``
    drops reports after checkpoint/consume, bounding memory on huge
    campaigns.  ``metrics`` collects per-unit telemetry (duration,
    queue wait, worker id, cached flag, outcome tallies) and feeds the
    progress heartbeat; it never touches the campaign's randomness.

    ``cancel`` is polled between work units (never inside one); when it
    returns true the campaign stops with :class:`CampaignCancelled`.
    Completed units are already journaled at that point, so a cancelled
    checkpointed campaign resumes where it stopped — the hook the
    campaign service's job cancellation and wall-clock budgets use.
    A :class:`KeyboardInterrupt` gets the same durability treatment: the
    journal is closed, metrics are flushed, and the interrupt is
    re-raised with a resume hint.

    Returns ``{unit index: report}`` (empty when ``collect=False``).
    """
    if n_jobs < 1:
        raise CampaignError("n_jobs must be at least 1")
    replayed = dict(checkpoint.completed) if checkpoint is not None else {}
    pending = [unit for unit in units if unit.index not in replayed]
    labels = {unit.index: unit.label for unit in units}
    sizes = {unit.index: unit.size for unit in units}
    results: Dict[int, Any] = {}
    emitter: Optional[_OrderedEmitter] = None
    if consume is not None or observer is not None:
        by_index = {unit.index: unit for unit in units}

        def _emit(index: int, report: Any) -> None:
            if consume is not None:
                consume(index, report)
            if observer is not None:
                observer(by_index[index], report)

        emitter = _OrderedEmitter([u.index for u in units], _emit)
    if metrics is not None and metrics.total_units is None:
        metrics.total_units = len(units)

    def _finish(index: int, report: Any, cached: bool,
                seconds: float = 0.0, queue_wait: float = 0.0,
                worker: Optional[int] = None) -> None:
        if checkpoint is not None and not cached:
            checkpoint.record(index, report)
        if emitter is not None:
            emitter.offer(index, report)
        if collect:
            results[index] = report
        detail = ""
        if metrics is not None:
            metrics.record_unit(index, labels.get(index, ""),
                                sizes.get(index, 0), report,
                                seconds=seconds, queue_wait=queue_wait,
                                cached=cached, worker=worker)
            detail = metrics.heartbeat()
        if progress is not None:
            progress.advance(labels.get(index, str(index)), cached=cached,
                             detail=detail)

    def _cancelled() -> bool:
        return cancel is not None and bool(cancel())

    def _cancellation() -> CampaignCancelled:
        done = len(results) if collect else (
            metrics.units_done if metrics is not None else 0)
        where = (f"; completed units are journaled in {checkpoint.path}"
                 if checkpoint is not None else "")
        return CampaignCancelled(
            f"campaign cancelled after {done}/{len(units)} work "
            f"units{where}")

    try:
        for unit in units:  # replayed units first, in plan order
            if unit.index in replayed:
                _finish(unit.index, replayed[unit.index], cached=True)

        if not pending:
            return results
        if n_jobs > 1:
            from concurrent.futures import ProcessPoolExecutor, as_completed

            with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(pending)),
                    initializer=_worker_init,
                    initargs=(state_factory, run_unit)) as pool:
                submitted: Dict[int, float] = {}
                futures = []
                for unit in pending:
                    submitted[unit.index] = time.time()
                    futures.append(pool.submit(_worker_call, unit))
                for future in as_completed(futures):
                    index, report, timing = future.result()
                    _finish(index, report, cached=False,
                            seconds=timing["seconds"],
                            queue_wait=(timing["started_wall"]
                                        - submitted[index]),
                            worker=int(timing["worker"]))
                    if _cancelled():
                        # not-yet-started units never run; in-flight
                        # ones finish but stay unjournaled past here
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise _cancellation()
            return results

        if state is None and state_factory is not None:
            state = state_factory()  # built once, only when work remains
        for unit in pending:
            if _cancelled():
                raise _cancellation()
            started = time.perf_counter()
            report = run_unit(state, unit)
            _finish(unit.index, report, cached=False,
                    seconds=time.perf_counter() - started)
        return results
    except KeyboardInterrupt:
        # the finally below closes the journal and flushes metrics; the
        # re-raise tells the operator the work so far is not lost
        hint = ""
        if checkpoint is not None:
            hint = (f": completed units are journaled in "
                    f"{checkpoint.path} — resume with --resume")
        raise KeyboardInterrupt(f"campaign interrupted{hint}") from None
    finally:
        if metrics is not None:
            metrics.finish()
        if checkpoint is not None:
            checkpoint.close()  # flush + fsync: the journal is durable
