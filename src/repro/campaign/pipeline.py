"""End-to-end two-level pipeline: RTL grid -> syndrome DB -> SWFI PVF.

This is the paper's whole methodology as one resumable run
(``python -m repro pipeline``): the RTL instruction grid and the t-MxM
tile campaigns execute on the shared campaign engine, their per-batch
reports stream straight into a
:class:`~repro.syndrome.builder.StreamingDatabaseBuilder`, the distilled
database is saved as JSON, and the software-level PVF campaigns then
inject that database's syndromes (plus the single-bit-flip baseline)
into the selected applications.

Every stage journals to *workdir* and resumes from whatever is already
there:

* ``rtl_grid.jsonl`` / ``tmxm.jsonl`` — engine checkpoints; a killed
  grid restarts at the first unfinished fault batch.
* ``syndrome_db.json`` — once it exists the RTL stages are skipped
  entirely and the database is loaded back.
* ``pvf_<app>_<model>.jsonl`` — per-campaign engine checkpoints.
* ``<journal>.metrics.json`` — per-stage campaign telemetry (unit
  durations, queue waits, cached counts, outcome tallies), plus the
  combined ``metrics.json`` rendered by ``python -m repro stats``.
* ``pipeline_summary.json`` — final metrics, written last.

Because batch randomness is seed-indexed, the pipeline's outputs are
bit-identical for a fixed seed no matter how often it was interrupted or
how many workers ran it (``--jobs``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..errors import CampaignError
from .progress import ProgressReporter, make_progress
from .telemetry import (
    PIPELINE_KIND,
    SCHEMA_VERSION,
    CampaignMetrics,
    load_metrics,
    metrics_path_for,
    validate_metrics,
)

__all__ = ["PIPELINE_SEED", "run_pipeline"]

#: Default campaign seed (the paper's publication year, as in datafiles).
PIPELINE_SEED = 2021

_MODEL_NAMES = ("bitflip", "syndrome")


def _grid_stage(workdir: Path, builder, *, seed: int, opcodes,
                input_ranges, grid_faults: int, tmxm_faults: int,
                n_jobs: int, batch_size: Optional[int],
                timeout: Optional[float], fresh: bool,
                quiet: bool, precision: str = "fp32",
                cancel: Optional[Callable[[], bool]] = None
                ) -> List[CampaignMetrics]:
    """Stage 1+2: RTL instruction grid and t-MxM tiles, streamed."""
    from ..rtl.campaign import run_grid, run_tmxm_grid
    from ..rtl.injector import RTLInjector

    injector = RTLInjector() if n_jobs == 1 else None
    grid_journal = workdir / "rtl_grid.jsonl"
    tmxm_journal = workdir / "tmxm.jsonl"
    grid_metrics = CampaignMetrics("rtl-grid")
    tmxm_metrics = CampaignMetrics("rtl-tmxm")
    progress = make_progress(None, "rtl", quiet=quiet)
    progress.status(
        f"[stage 1/3] RTL grid ({grid_faults} faults/cell)"
        + (" [resuming]" if not fresh and grid_journal.exists() else ""))
    run_grid(
        opcodes=opcodes, input_ranges=input_ranges, n_faults=grid_faults,
        seed=seed, injector=injector, n_jobs=n_jobs,
        batch_size=batch_size, timeout=timeout,
        checkpoint=grid_journal, resume=not fresh and grid_journal.exists(),
        progress=progress, metrics=grid_metrics, cancel=cancel,
        consume=lambda index, report: builder.add_report(report),
        collect=False, precision=precision)
    progress = make_progress(None, "tmxm", quiet=quiet)
    progress.status(
        f"[stage 1/3] t-MxM tiles ({tmxm_faults} faults/cell)"
        + (" [resuming]" if not fresh and tmxm_journal.exists() else ""))
    run_tmxm_grid(
        n_faults=tmxm_faults, seed=seed + 1, injector=injector,
        n_jobs=n_jobs, batch_size=batch_size, timeout=timeout,
        checkpoint=tmxm_journal, resume=not fresh and tmxm_journal.exists(),
        progress=progress, metrics=tmxm_metrics, cancel=cancel,
        consume=lambda index, report: builder.add_tmxm_report(report),
        collect=False)
    return [grid_metrics, tmxm_metrics]


def _make_model(name: str, database):
    from ..swfi.models import RelativeErrorSyndrome, SingleBitFlip

    if name == "bitflip":
        return SingleBitFlip()
    if name == "syndrome":
        return RelativeErrorSyndrome(database)
    raise CampaignError(
        f"unknown fault model {name!r}; choose from {_MODEL_NAMES}")


def run_pipeline(workdir: Union[str, Path],
                 seed: int = PIPELINE_SEED,
                 opcodes: Optional[Iterable] = None,
                 input_ranges: Sequence[str] = ("S", "M", "L"),
                 grid_faults: int = 200,
                 tmxm_faults: int = 200,
                 apps: Sequence[str] = ("MxM",),
                 models: Sequence[str] = _MODEL_NAMES,
                 injections: int = 300,
                 n_jobs: int = 1,
                 batch_size: Optional[int] = None,
                 timeout: Optional[float] = None,
                 fresh: bool = False,
                 quiet: bool = False,
                 precision: str = "fp32",
                 cancel: Optional[Callable[[], bool]] = None) -> Dict:
    """Run RTL campaigns, distil the database, measure application PVFs.

    Returns the summary dict (also written to
    ``workdir/pipeline_summary.json``).  Re-invoking with the same
    *workdir* resumes: finished RTL batches replay from their journals, a
    finished database skips the RTL stages, and finished PVF batches
    replay from theirs.  ``fresh=True`` discards all prior state.
    ``precision`` selects the float datapath end to end: the RTL grid
    characterises the matching reduced-precision unit, the syndrome
    database keys its entries by format, and the applications (which
    must support the format) run their operand streams through it.
    ``cancel`` is polled between work units of every stage; a true
    return aborts the pipeline with
    :class:`~repro.errors.CampaignCancelled`, leaving the journals
    resumable (the campaign service's cancellation hook).
    """
    from ..apps import APP_FACTORIES, make_application
    from ..rtl.campaign import CHARACTERIZED_OPCODES
    from ..swfi.campaign import run_pvf_campaign
    from ..syndrome.builder import StreamingDatabaseBuilder
    from ..syndrome.database import SyndromeDatabase

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    if opcodes is None:
        opcodes = CHARACTERIZED_OPCODES
    opcodes = list(opcodes)
    app_names = list(apps)
    model_names = list(models)
    # fail on bad names before hours of RTL campaigning, not after
    for name in model_names:
        if name not in _MODEL_NAMES:
            raise CampaignError(
                f"unknown fault model {name!r}; choose from {_MODEL_NAMES}")
    for name in app_names:
        if name not in APP_FACTORIES:
            raise KeyError(
                f"unknown application {name!r}; "
                f"choose from {sorted(APP_FACTORIES)}")
    if precision not in ("fp32", "fp16", "bf16"):
        raise CampaignError(
            f"unknown float precision {precision!r}; "
            "choose from ('fp32', 'fp16', 'bf16')")
    if precision != "fp32":
        # fail on fp32-only apps before hours of RTL campaigning
        for name in app_names:
            make_application(name, seed=seed, precision=precision)

    status = make_progress(None, "", quiet=quiet)
    stage_metrics: List[Dict] = []
    db_path = workdir / "syndrome_db.json"
    if db_path.exists() and not fresh:
        status.status(f"[stage 1/3] syndrome database exists, "
                      f"skipping RTL campaigns ({db_path})")
        database = SyndromeDatabase.load(db_path)
        # keep the RTL stages' telemetry from the run that built the
        # database, so the combined metrics file stays complete
        for journal in ("rtl_grid.jsonl", "tmxm.jsonl"):
            metrics_file = metrics_path_for(workdir / journal)
            if metrics_file.exists():
                try:
                    stage_metrics.append(load_metrics(metrics_file))
                except CampaignError:
                    pass  # stale/foreign file: drop, do not abort
    else:
        builder = StreamingDatabaseBuilder()
        rtl_metrics = _grid_stage(
            workdir, builder, seed=seed, opcodes=opcodes,
            input_ranges=input_ranges, grid_faults=grid_faults,
            tmxm_faults=tmxm_faults, n_jobs=n_jobs,
            batch_size=batch_size, timeout=timeout, fresh=fresh,
            quiet=quiet, precision=precision)
        stage_metrics.extend(m.to_dict() for m in rtl_metrics)
        database = builder.build()
        database.save(db_path)
        status.status(f"[stage 2/3] syndrome database saved to {db_path} "
                      f"({len(database.entries())} entries, "
                      f"{len(database.tmxm_entries())} t-MxM entries)")

    pvf_results: List[Dict] = []
    for app_name in app_names:
        for model_name in model_names:
            app = make_application(app_name, seed=seed,
                                   precision=precision)
            model = _make_model(model_name, database)
            journal = workdir / f"pvf_{app_name}_{model_name}.jsonl"
            progress = make_progress(
                None, f"pvf {app_name}/{model_name}", quiet=quiet)
            progress.status(
                f"[stage 3/3] PVF: {app_name} under {model_name} "
                f"({injections} injections)"
                + (" [resuming]" if not fresh and journal.exists() else ""))
            pvf_metrics = CampaignMetrics(
                f"pvf/{app_name}/{model_name}")
            report = run_pvf_campaign(
                app, model, injections, seed=seed, n_jobs=n_jobs,
                batch_size=batch_size, timeout=timeout,
                checkpoint=journal,
                resume=not fresh and journal.exists(),
                progress=progress, metrics=pvf_metrics, cancel=cancel)
            stage_metrics.append(pvf_metrics.to_dict())
            low, high = report.confidence_interval()
            pvf_results.append({
                "app": app_name,
                "model": report.model_name,
                "pvf": report.pvf,
                "due_rate": report.due_rate,
                "n_injections": report.n_injections,
                "ci95": [low, high],
            })

    summary = {
        "seed": int(seed),
        "config": {
            "opcodes": [getattr(o, "value", str(o)) for o in opcodes],
            "input_ranges": list(input_ranges),
            "grid_faults": int(grid_faults),
            "tmxm_faults": int(tmxm_faults),
            "injections": int(injections),
            "batch_size": None if batch_size is None else int(batch_size),
            "precision": precision,
        },
        "database": {
            "path": str(db_path),
            "entries": len(database.entries()),
            "tmxm_entries": len(database.tmxm_entries()),
        },
        "pvf": pvf_results,
    }
    (workdir / "metrics.json").write_text(json.dumps({
        "kind": PIPELINE_KIND,
        "version": SCHEMA_VERSION,
        "stages": [validate_metrics(payload) for payload in stage_metrics],
    }, indent=2) + "\n")
    (workdir / "pipeline_summary.json").write_text(
        json.dumps(summary, indent=2) + "\n")
    status.status(f"pipeline complete: {workdir / 'pipeline_summary.json'}")
    return summary
