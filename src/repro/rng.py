"""Deterministic random-number helpers.

Every campaign in the library takes an integer ``seed`` and derives all of
its randomness from a :class:`numpy.random.Generator` created here, so any
reported number can be regenerated exactly.  ``spawn`` derives independent
child seeds for sub-campaigns without correlating their streams.
"""

from __future__ import annotations

import hashlib
from typing import List

import numpy as np

__all__ = ["make_rng", "spawn_seeds", "spawn_seed_range", "namespace_seed"]


def make_rng(seed: int) -> np.random.Generator:
    """Create the library's canonical seeded generator (PCG64)."""
    return np.random.default_rng(seed)


def spawn_seeds(seed: int, count: int) -> List[int]:
    """Derive *count* independent child seeds from a parent seed.

    Child seeds are indexed: ``spawn_seeds(s, n)`` is a prefix of
    ``spawn_seeds(s, m)`` for ``n <= m``, so campaigns can grow (or shard)
    their batch list without reshuffling earlier batches' randomness.
    """
    return spawn_seed_range(seed, 0, count)


def spawn_seed_range(seed: int, start: int, count: int) -> List[int]:
    """Child seeds ``start .. start+count-1`` of the parent *seed*.

    ``SeedSequence`` children are identified by their spawn index alone,
    so any contiguous window of the (conceptually infinite) child-seed
    list can be regenerated independently — the basis for deterministic
    batch sharding: batch *i* of a campaign always draws from child *i*,
    no matter which worker executes it or in which order.
    """
    if start < 0 or count < 0:
        raise ValueError("start and count must be non-negative")
    seq = np.random.SeedSequence(seed)
    children = seq.spawn(start + count)[start:]
    return [int(s.generate_state(1)[0]) for s in children]


def namespace_seed(seed: int, namespace: str) -> int:
    """Derive a seed for *namespace* that is independent of the parent.

    Namespaced streams live in a spawn-key branch of the parent
    ``SeedSequence`` keyed by a hash of the namespace string, disjoint
    from the indexed children of :func:`spawn_seeds`.  Samplers that
    arrived later than an existing campaign family (e.g. stuck-at
    fault-list generation next to the original transient lists) draw
    from their own namespace, so adding them to a grid never shifts the
    streams — and hence the byte-level reports — of the existing cells.
    """
    digest = hashlib.sha256(namespace.encode("utf-8")).digest()
    spawn_key = tuple(
        int.from_bytes(digest[i:i + 4], "little") for i in range(0, 16, 4))
    seq = np.random.SeedSequence(seed, spawn_key=spawn_key)
    return int(seq.generate_state(1)[0])
