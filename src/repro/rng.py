"""Deterministic random-number helpers.

Every campaign in the library takes an integer ``seed`` and derives all of
its randomness from a :class:`numpy.random.Generator` created here, so any
reported number can be regenerated exactly.  ``spawn`` derives independent
child seeds for sub-campaigns without correlating their streams.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["make_rng", "spawn_seeds"]


def make_rng(seed: int) -> np.random.Generator:
    """Create the library's canonical seeded generator (PCG64)."""
    return np.random.default_rng(seed)


def spawn_seeds(seed: int, count: int) -> List[int]:
    """Derive *count* independent child seeds from a parent seed."""
    seq = np.random.SeedSequence(seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(count)]
