"""SDC pattern analytics over campaign reports."""
