"""SDC pattern mining: bit helpers, section invariants, degeneracy.

The golden-fixture test (tests/artifacts) pins the exact mined bytes of
the sample report; here the mining is checked structurally, against
campaign reports produced by the real RTL engine and against the bit
arithmetic's ground truth (Python's arbitrary-precision ints).
"""

import numpy as np
import pytest

from repro.analytics import PatternReport, mine_patterns
from repro.analytics.patterns import (
    SPAN_CLASSES,
    _floor_log2,
    _popcount,
)
from repro.apps import make_application
from repro.errors import CampaignError
from repro.gpu import Opcode
from repro.rtl import make_microbenchmark, run_campaign
from repro.rtl.reports import CampaignReport
from repro.swfi.campaign import run_pvf_campaign
from repro.swfi.models import SingleBitFlip


class TestBitHelpers:
    def test_popcount_matches_python_ints(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**64, size=256, dtype=np.uint64)
        expected = [bin(int(v)).count("1") for v in values]
        assert _popcount(values).tolist() == expected

    def test_popcount_empty(self):
        assert _popcount(np.zeros(0, dtype=np.uint64)).tolist() == []

    def test_floor_log2_matches_bit_length(self):
        rng = np.random.default_rng(1)
        values = rng.integers(1, 2**64, size=256, dtype=np.uint64)
        expected = [int(v).bit_length() - 1 for v in values]
        assert _floor_log2(values).tolist() == expected

    def test_floor_log2_exact_at_word_boundaries(self):
        # float64 rounding would misplace these without the split-halves
        # trick: 2^53+1 is the first integer float64 cannot represent
        values = np.array([1, 2**31, 2**32, 2**53 + 1, 2**63,
                           2**64 - 1], dtype=np.uint64)
        assert _floor_log2(values).tolist() == [0, 31, 32, 53, 63, 63]


@pytest.fixture(scope="module")
def rtl_report():
    bench = make_microbenchmark(Opcode.FADD, "M", seed=3)
    return run_campaign(bench, "fp32", 120, seed=3, batch_size=30)


class TestRTLMining:
    def test_sections_are_consistent_with_the_report(self, rtl_report):
        mined = mine_patterns(rtl_report)
        assert mined.source == "rtl"
        assert mined.cell == {
            "instruction": rtl_report.instruction,
            "range": rtl_report.input_range,
            "module": rtl_report.module,
            "precision": rtl_report.precision,
        }
        assert mined.n_injections == rtl_report.n_injections
        assert mined.n_sdc == rtl_report.n_sdc

    def test_spatial_tallies_add_up(self, rtl_report):
        spatial = mine_patterns(rtl_report).spatial
        assert spatial["n_events"] == rtl_report.n_sdc
        # every changed value is single- or multi-bit, never both
        assert spatial["single_bit"] + spatial["multi_bit"] == \
            spatial["n_changed_values"]
        assert spatial["n_changed_values"] <= spatial["n_values"]
        assert sum(spatial["bit_histogram"].values()) == \
            spatial["single_bit"]
        # locality counters only cover multi-bit corruptions, and
        # within-byte implies within-word
        assert spatial["byte_local_multi"] <= spatial["word_local_multi"]
        assert spatial["word_local_multi"] <= spatial["multi_bit"]
        # the span classes partition the SDC events
        assert set(spatial["span"]) == set(SPAN_CLASSES)
        assert sum(spatial["span"].values()) == spatial["n_events"]
        if spatial["n_changed_values"]:
            assert spatial["mean_flipped_bits"] > 0.0

    def test_temporal_bins_cover_every_sdc(self, rtl_report):
        temporal = mine_patterns(rtl_report).temporal
        assert temporal["n_events"] == rtl_report.n_sdc
        assert sum(temporal["bins"]) == temporal["n_events"]
        assert sum(c["events"] for c in temporal["clusters"]) == \
            temporal["n_events"]
        if temporal["n_events"]:
            assert temporal["cycle_min"] <= temporal["cycle_max"]
            for cluster in temporal["clusters"]:
                assert cluster["cycle_lo"] <= cluster["cycle_hi"]

    def test_signatures_share_sums_to_one(self, rtl_report):
        signatures = mine_patterns(rtl_report).signatures
        assert signatures, "the 120-fault FADD campaign must see SDCs"
        assert sum(s["sdc"] for s in signatures) == rtl_report.n_sdc
        assert sum(s["share"] for s in signatures) == pytest.approx(1.0)
        # a single-cell campaign has a single signature key
        (signature,) = signatures
        assert signature["opcode"] == rtl_report.instruction
        assert signature["range"] == rtl_report.input_range
        assert signature["module"] == rtl_report.module

    def test_round_trips_through_the_artifact_envelope(self, rtl_report):
        mined = mine_patterns(rtl_report)
        assert PatternReport.from_dict(mined.to_dict()) == mined

    def test_empty_report_mines_to_zeros(self):
        empty = CampaignReport(instruction="FADD", input_range="M",
                               module="fp32", precision="fp32")
        mined = mine_patterns(empty)
        assert mined.n_sdc == 0
        assert mined.spatial["n_events"] == 0
        assert mined.spatial["bit_histogram"] == {}
        assert mined.spatial["span"] == {name: 0
                                         for name in SPAN_CLASSES}
        assert mined.temporal == {"n_events": 0, "cycle_min": None,
                                  "cycle_max": None, "bins": [],
                                  "clusters": []}
        assert mined.signatures == []


class TestPVFMining:
    def test_degrades_to_the_signature_table(self):
        report = run_pvf_campaign(make_application("MxM", seed=5),
                                  SingleBitFlip(), 30, seed=5,
                                  batch_size=10)
        mined = mine_patterns(report)
        assert mined.source == "pvf"
        assert mined.cell == {"app": "MxM", "model": "single-bit-flip"}
        assert mined.spatial is None and mined.temporal is None
        assert sum(s["sdc"] for s in mined.signatures) == report.n_sdc
        by_opcode = {s["opcode"]: s for s in mined.signatures}
        assert by_opcode.keys() == report.per_opcode_sdc.keys()
        for opcode, signature in by_opcode.items():
            assert signature["sdc"] == report.per_opcode_sdc[opcode]
            assert signature["injections"] == \
                report.per_opcode_injections.get(opcode, 0)
            assert signature["range"] is None
            assert signature["module"] is None

    def test_unknown_report_type_rejected(self):
        with pytest.raises(CampaignError):
            mine_patterns({"not": "a report"})
