"""End-to-end two-level integration tests.

The full paper flow at miniature scale: RTL campaigns -> syndrome
database -> software injection -> PVF comparison, plus the claims that
must hold structurally (syndrome PVF >= bit-flip PVF in expectation for
masking-prone codes; CNN tile corruption causes misclassifications).
"""

import numpy as np
import pytest

from repro.apps import Hotspot, MatrixMultiply
from repro.rng import make_rng
from repro.swfi import (
    RelativeErrorSyndrome,
    SingleBitFlip,
    SoftwareInjector,
    run_pvf_campaign,
)
from repro.swfi.tmxm_injector import TmxmInjector


class TestTwoLevelFlow:
    def test_syndrome_model_runs_on_every_characterised_opcode(
            self, small_database):
        """Opcode coverage: whatever the injector picks must resolve."""
        app = MatrixMultiply(n=16, tile=8, seed=0)
        model = RelativeErrorSyndrome(small_database)
        injector = SoftwareInjector(app)
        rng = make_rng(0)
        for _ in range(25):
            injector.inject_one(model, rng)  # must not raise

    def test_mxm_pvf_is_high_for_both_models(self, small_database):
        app = MatrixMultiply(n=16, tile=8, seed=0)
        bitflip = run_pvf_campaign(app, SingleBitFlip(), 60, seed=1)
        syndrome = run_pvf_campaign(
            app, RelativeErrorSyndrome(small_database), 60, seed=1)
        assert bitflip.pvf > 0.8
        assert syndrome.pvf > 0.8

    def test_syndrome_pvf_meets_or_beats_bitflip_on_hotspot(
            self, small_database):
        """The paper's headline direction on the masking-prone stencil."""
        app = Hotspot(n=24, iterations=12, seed=0)
        bitflip = run_pvf_campaign(app, SingleBitFlip(), 150, seed=2)
        syndrome = run_pvf_campaign(
            app, RelativeErrorSyndrome(small_database), 150, seed=2)
        assert syndrome.pvf >= bitflip.pvf - 0.05

    def test_no_due_from_syndrome_injection(self, small_database):
        """Paper Sec. VI: syndrome injections never hung an application."""
        app = MatrixMultiply(n=16, tile=8, seed=0)
        report = run_pvf_campaign(
            app, RelativeErrorSyndrome(small_database), 60, seed=3)
        assert report.n_due == 0


class TestCnnTmxmFlow:
    def test_tile_corruption_from_real_rtl_data(self, lenet_app,
                                                small_database):
        entries = small_database.tmxm_entries()
        assert entries, "t-MxM campaigns produced no syndrome entries"
        injector = TmxmInjector(lenet_app, small_database,
                                tile_kind="Random", module="scheduler")
        report = injector.run_campaign(15, seed=4)
        assert report.n_injections == 15
        assert report.pattern_counts
