"""t-MxM mini-app tests."""

import numpy as np
import pytest

from repro.gpu.bits import bits_to_float
from repro.rtl import TILE_DIM, TILE_KINDS, make_tile_pair, make_tmxm_bench
from repro.rtl.tmxm import tmxm_reference


class TestTiles:
    def test_kinds(self):
        assert TILE_KINDS == ("Max", "Zero", "Random")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_tile_pair("Huge")

    def test_max_tile_is_large(self):
        a, b = make_tile_pair("Max", seed=1)
        assert a.min() >= 1.0 and b.min() >= 1.0

    def test_zero_tile_is_mostly_zero(self):
        a, b = make_tile_pair("Zero", seed=1)
        assert (a == 0).mean() > 0.4
        assert (b == 0).mean() > 0.4

    def test_random_tile_unbiased(self):
        a, _ = make_tile_pair("Random", seed=1)
        assert abs(float(a.mean())) < 0.5

    def test_determinism(self):
        a1, b1 = make_tile_pair("Random", seed=3)
        a2, b2 = make_tile_pair("Random", seed=3)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)


class TestReference:
    def test_matches_float64_product_closely(self):
        a, b = make_tile_pair("Random", seed=2)
        ref = tmxm_reference(a, b)
        assert np.allclose(ref, a.astype(np.float64) @ b.astype(np.float64),
                           atol=1e-5)


class TestGoldenExecution:
    @pytest.mark.parametrize("kind", TILE_KINDS)
    def test_sm_matches_reference(self, injector, kind):
        bench = make_tmxm_bench(kind, seed=6)
        golden = injector.run_golden(bench)
        a, b = make_tile_pair(kind, seed=6)
        got = np.array([bits_to_float(w) for w in golden.regions[0]],
                       dtype=np.float32).reshape(TILE_DIM, TILE_DIM)
        assert np.array_equal(got, tmxm_reference(a, b))

    def test_uses_64_threads(self):
        bench = make_tmxm_bench("Random")
        assert bench.n_threads == TILE_DIM * TILE_DIM

    def test_row_col_launch_registers(self):
        bench = make_tmxm_bench("Random")
        rows = bench.initial_registers[1]
        cols = bench.initial_registers[2]
        assert rows[:9] == (0, 0, 0, 0, 0, 0, 0, 0, 1)
        assert cols[:9] == (0, 1, 2, 3, 4, 5, 6, 7, 0)

    def test_instruction_mix_stresses_indices(self):
        # the paper: t-MxM adds IMAD/ISET/BRA index computation strain
        from repro.gpu.isa import Opcode

        histogram = make_tmxm_bench("Random").program.opcode_histogram()
        assert histogram[Opcode.IMAD] >= 2
        assert histogram[Opcode.ISET] == 1
        assert histogram[Opcode.BRA] == 1
        assert histogram[Opcode.FFMA] == 1
