"""Vectorized fault-parallel RTL engine tests.

The engine's contract is **bit-identity with the scalar injector**: for
any fixed-seed fault list the per-fault classifications (outcome,
corrupted values, DUE reasons, fired/expired bookkeeping) and the merged
campaign reports must match the one-simulation-per-fault path exactly.
These tests pin that contract at three granularities — per fault, per
campaign cell, and per grid (including the scalar-fallback modules) —
plus the norm.shift propagation regression the scalar comparison relies
on.
"""

import pytest

from repro.gpu.bits import float_to_bits
from repro.gpu.fault_plane import FaultPlane, TransientFault
from repro.gpu.isa import Opcode
from repro.gpu.sm import SMConfig
from repro.gpu.trace import GoldenTraceRecorder
from repro.rtl import (
    Outcome,
    RTLInjector,
    VectorizedRTLInjector,
    generate_fault_list,
    make_microbenchmark,
    run_campaign,
    run_grid,
)
from repro.rtl.vectorized import REPLAY_MODULES


def _same_classification(scalar, vectorized):
    assert vectorized.outcome is scalar.outcome
    assert vectorized.fault_fired == scalar.fault_fired
    assert vectorized.due_reason == scalar.due_reason
    assert [(c.thread, c.address, c.golden_bits, c.faulty_bits)
            for c in vectorized.corrupted] == \
        [(c.thread, c.address, c.golden_bits, c.faulty_bits)
         for c in scalar.corrupted]


class TestPerFaultEquivalence:
    @pytest.mark.parametrize("opcode,module", [
        (Opcode.FADD, "fp32"),
        (Opcode.FFMA, "fp32"),
        (Opcode.IMAD, "int"),
        (Opcode.FSIN, "sfu"),
        (Opcode.GLD, "pipeline"),
    ])
    def test_matches_scalar_injector(self, opcode, module):
        injector = RTLInjector()
        vec = VectorizedRTLInjector(injector)
        bench = make_microbenchmark(opcode, "M", seed=5)
        prepared = vec.prepare(bench)
        faults = generate_fault_list(
            injector.plane, module, 40, prepared.golden.cycles, seed=9)
        batch = vec.inject_batch(prepared, faults)
        assert len(batch) == len(faults)
        outcomes = set()
        for fault, vectorized in zip(faults, batch):
            scalar = injector.inject(bench, prepared.golden, fault)
            _same_classification(scalar, vectorized)
            outcomes.add(vectorized.outcome)
        # a 40-fault sample must not be all-masked, or the comparison
        # would vacuously pass without exercising the replay datapaths
        assert outcomes - {Outcome.MASKED}, \
            f"fault sample for {opcode}/{module} never propagated"

    def test_unfired_fault_is_instantly_masked(self):
        injector = RTLInjector()
        vec = VectorizedRTLInjector(injector)
        bench = make_microbenchmark(Opcode.FADD, "M", seed=5)
        prepared = vec.prepare(bench)
        ff = injector.plane.flipflops("fp32")[0]
        fault = TransientFault(ff, bit=0,
                               cycle=prepared.golden.cycles + 100, window=4)
        vectorized = vec.inject_batch(prepared, [fault])[0]
        assert vectorized.outcome is Outcome.MASKED
        assert vectorized.fault_fired is False
        assert fault.expired is True
        assert fault.fired_cycle is None
        scalar = injector.inject(bench, prepared.golden, fault)
        _same_classification(scalar, vectorized)


class TestCampaignEquivalence:
    def test_grid_reports_bit_identical_including_fallback_modules(self):
        kwargs = dict(opcodes=(Opcode.FADD, Opcode.IADD),
                      input_ranges=("S",), n_faults=25, seed=7)
        scalar = run_grid(vectorize=False, **kwargs)
        vectorized = run_grid(vectorize="auto", **kwargs)
        modules = {r.module for r in scalar}
        assert modules - REPLAY_MODULES, \
            "the grid must include scalar-fallback (control) modules"
        assert [r.to_dict() for r in vectorized] == \
            [r.to_dict() for r in scalar]
        assert [r.to_json() for r in vectorized] == \
            [r.to_json() for r in scalar]

    def test_register_file_cell_stays_scalar_under_auto(self):
        # persistent-state (SRAM) modules bypass the latch plane, so the
        # trace-driven firing resolution does not apply: "auto" must run
        # them through the scalar injector and still match exactly
        bench = make_microbenchmark(Opcode.IADD, "M", seed=3)
        config = SMConfig(ecc_enabled=False)
        kwargs = dict(module="register_file", n_faults=20, seed=11,
                      config=config)
        scalar = run_campaign(bench, vectorize=False, **kwargs)
        vectorized = run_campaign(bench, vectorize="auto", **kwargs)
        assert vectorized.to_dict() == scalar.to_dict()

    def test_auto_reverts_to_scalar_under_a_timeout(self):
        # the replay engine is schedule-bounded and cannot trip the
        # per-simulation wall-clock guard, so "auto" + timeout must keep
        # the historical semantics: every injection runs guarded scalar
        bench = make_microbenchmark(Opcode.FADD, "M", seed=0)
        report = run_campaign(bench, module="fp32", n_faults=5, seed=0,
                              timeout=1e-6, vectorize="auto")
        assert report.n_due == 5
        assert all("wall-clock guard" in (r.due_reason or "")
                   for r in report.general)

    def test_vectorize_flag_reaches_single_cell_campaign(self):
        bench = make_microbenchmark(Opcode.FMUL, "S", seed=2)
        kwargs = dict(module="fp32", n_faults=30, seed=4)
        scalar = run_campaign(bench, vectorize=False, **kwargs)
        vectorized = run_campaign(bench, vectorize=True, **kwargs)
        assert vectorized.to_dict() == scalar.to_dict()

    def test_burst_campaign_routes_scalar_under_auto(self):
        # non-transient models re-corrupt across the window, which the
        # single-flip replay engine cannot express: "auto" must hand
        # every burst to the scalar injector and match it exactly
        bench = make_microbenchmark(Opcode.FADD, "M", seed=5)
        kwargs = dict(module="fp32", n_faults=25, seed=6,
                      fault_model="burst", burst_width=3, burst_window=4)
        scalar = run_campaign(bench, vectorize=False, **kwargs)
        vectorized = run_campaign(bench, vectorize="auto", **kwargs)
        assert vectorized.to_dict() == scalar.to_dict()

    def test_stuck_at_batch_routes_scalar(self):
        # the permanently-armed model never goes passive, so the batch
        # engine must fall back fault-by-fault — exact equality again
        from repro.gpu.fault_plane import StuckAtFault

        injector = RTLInjector()
        vec = VectorizedRTLInjector(injector)
        bench = make_microbenchmark(Opcode.FADD, "M", seed=8)
        prepared = vec.prepare(bench)
        ffs = injector.plane.flipflops("fp32")
        faults = [StuckAtFault(ffs[i % len(ffs)], bit=0,
                               stuck_at=i % 2) for i in range(6)]
        batch = vec.inject_batch(prepared, faults)
        for fault, vectorized in zip(faults, batch):
            scalar = injector.inject(bench, prepared.golden, fault)
            _same_classification(scalar, vectorized)


class TestNormShiftPropagation:
    """Regression for the norm.shift dead read-back: the latched (and
    therefore faultable) shift amount must feed the barrel shifter, so a
    transient captured by norm.shift mis-normalises the FADD result."""

    def test_norm_shift_fault_corrupts_fadd_result(self):
        injector = RTLInjector()
        sm = injector.sm
        rec = GoldenTraceRecorder()
        from repro.gpu.program import ProgramBuilder
        b = ProgramBuilder("normshift")
        b.gld(2, 0, offset=0x100)
        b.gld(3, 0, offset=0x200)
        b.fadd(5, 2, 3)
        b.gst(0, 5, offset=0x300)
        b.exit()
        program = b.build()
        image = {0x100: [float_to_bits(1.5)],
                 0x200: [float_to_bits(0.25)]}
        sm.launch(program, 1, memory_image=image, recorder=rec)
        key = ("fp32", "norm.shift", 0)
        site = rec.first_latch_at_or_after(key, 0)
        assert site is not None, "FADD must latch norm.shift for lane 0"
        cycle = site[0]

        ff = next(f for f in sm.plane.flipflops("fp32")
                  if f.name == "norm.shift" and f.lane == 0)
        golden = sm.launch(program, 1, memory_image=image)
        golden_word = golden.memory.read_words(0x300, 1)[0]
        fault = TransientFault(ff, bit=1, cycle=cycle, window=1)
        faulty = sm.launch(program, 1, memory_image=image, fault=fault)
        faulty_word = faulty.memory.read_words(0x300, 1)[0]
        assert fault.fired_cycle == cycle
        assert faulty_word != golden_word, \
            "a fired norm.shift transient must mis-normalise the sum"

    def test_norm_shift_faults_reach_sdc_in_a_campaign(self):
        injector = RTLInjector()
        vec = VectorizedRTLInjector(injector)
        bench = make_microbenchmark(Opcode.FADD, "M", seed=5)
        prepared = vec.prepare(bench)
        ffs = [f for f in injector.plane.flipflops("fp32")
               if f.name == "norm.shift"]
        assert ffs
        faults = []
        for ff in ffs:
            site = prepared.recorder.first_latch_at_or_after(ff.key, 0)
            if site is not None:
                faults.append(TransientFault(ff, bit=1, cycle=site[0],
                                             window=1))
        assert faults
        batch = vec.inject_batch(prepared, faults)
        sdc = [c for c in batch if c.outcome is Outcome.SDC]
        assert sdc, "norm.shift strikes at latch instants must yield SDCs"
        for fault, vectorized in zip(faults, batch):
            scalar = injector.inject(bench, prepared.golden, fault)
            _same_classification(scalar, vectorized)
