"""Campaign report tests."""

import pytest

from repro.rtl.classify import (
    CorruptedValue,
    Outcome,
    RunClassification,
)
from repro.rtl.reports import CampaignReport, FaultDescriptor


def _fault(i=0):
    return FaultDescriptor("fp32", "reg", 0, i % 8, i)


def _sdc(n_threads=1):
    corrupted = [CorruptedValue(t, 0x100 + t, 1, 2)
                 for t in range(n_threads)]
    return RunClassification(Outcome.SDC, corrupted)


def _report():
    report = CampaignReport("FADD", "M", "fp32")
    report.add(_fault(0), RunClassification(Outcome.MASKED), "FADD", "f32")
    report.add(_fault(1), _sdc(1), "FADD", "f32")
    report.add(_fault(2), _sdc(3), "FADD", "f32")
    report.add(_fault(3),
               RunClassification(Outcome.DUE, due_reason="hang"),
               "FADD", "f32")
    return report


class TestAccumulation:
    def test_counts(self):
        report = _report()
        assert report.n_injections == 4
        assert report.n_masked == 1
        assert report.n_sdc == 2
        assert report.n_sdc_single == 1
        assert report.n_sdc_multiple == 1
        assert report.n_due == 1

    def test_avf(self):
        report = _report()
        assert report.avf() == pytest.approx(3 / 4)
        assert report.avf(Outcome.SDC) == pytest.approx(2 / 4)
        assert report.avf(Outcome.DUE) == pytest.approx(1 / 4)

    def test_empty_avf_is_zero(self):
        assert CampaignReport("FADD", "M", "fp32").avf() == 0.0

    def test_mean_corrupted_threads(self):
        assert _report().mean_corrupted_threads() == pytest.approx(2.0)

    def test_detailed_only_for_sdc(self):
        report = _report()
        assert len(report.detailed) == 2
        assert report.detailed[1].n_corrupted_threads == 3


class TestSerialization:
    def test_json_roundtrip(self):
        report = _report()
        restored = CampaignReport.from_json(report.to_json())
        assert restored.n_injections == report.n_injections
        assert restored.n_sdc_multiple == report.n_sdc_multiple
        assert restored.general[3].due_reason == "hang"
        assert restored.detailed[0].relative_errors() == \
            report.detailed[0].relative_errors()

    def test_relative_errors_respect_value_kind(self):
        report = CampaignReport("IADD", "M", "int")
        report.add(_fault(), _sdc(1), "IADD", "u32")
        assert report.detailed[0].relative_errors() == [1.0]
