"""RTL campaign orchestration tests."""

import pytest

from repro.errors import CampaignError
from repro.gpu import Opcode
from repro.gpu.fault_plane import ModuleName
from repro.rtl import (
    MODULE_INSTRUCTIONS,
    make_microbenchmark,
    modules_for_opcode,
    run_campaign,
    run_grid,
)
from repro.rtl.classify import Outcome


class TestModuleRouting:
    def test_arithmetic_opcodes_reach_their_unit(self):
        assert "fp32" in modules_for_opcode(Opcode.FADD)
        assert "int" in modules_for_opcode(Opcode.IMAD)
        assert "sfu" in modules_for_opcode(Opcode.FSIN)
        assert "sfu_controller" in modules_for_opcode(Opcode.FEXP)

    def test_every_opcode_reaches_scheduler_and_pipeline(self):
        for opcode in MODULE_INSTRUCTIONS[ModuleName.SCHEDULER]:
            modules = modules_for_opcode(opcode)
            assert ModuleName.SCHEDULER in modules
            assert ModuleName.PIPELINE in modules

    def test_fus_idle_for_memory_and_control(self):
        # the paper does not inject FUs for GLD/GST/BRA/ISET
        for opcode in (Opcode.GLD, Opcode.GST, Opcode.BRA, Opcode.ISET):
            modules = modules_for_opcode(opcode)
            assert ModuleName.FP32 not in modules
            assert ModuleName.INT not in modules
            assert ModuleName.SFU not in modules


class TestRunCampaign:
    def test_basic_report(self, injector):
        bench = make_microbenchmark(Opcode.IADD, "M", seed=1)
        report = run_campaign(bench, "int", 120, seed=5, injector=injector)
        assert report.n_injections == 120
        assert report.instruction == "IADD"
        assert report.module == "int"
        assert report.n_masked + report.n_sdc + report.n_due == 120

    def test_idle_module_rejected(self, injector):
        bench = make_microbenchmark(Opcode.GLD, "M", seed=1)
        with pytest.raises(CampaignError):
            run_campaign(bench, "fp32", 10, injector=injector)

    def test_bad_faults_rejected(self, injector):
        bench = make_microbenchmark(Opcode.FADD, "M", seed=1)
        with pytest.raises(CampaignError):
            run_campaign(bench, "fp32", -1, injector=injector)
        with pytest.raises(CampaignError):
            run_campaign(bench, "alu9000", 10, injector=injector)

    def test_zero_faults_yields_empty_report(self, injector):
        bench = make_microbenchmark(Opcode.FADD, "M", seed=1)
        report = run_campaign(bench, "fp32", 0, injector=injector)
        assert report.n_injections == 0
        assert report.instruction == "FADD"
        assert report.avf() == 0.0

    def test_seed_reproducibility(self, injector):
        bench = make_microbenchmark(Opcode.FMUL, "M", seed=1)
        a = run_campaign(bench, "fp32", 80, seed=3, injector=injector)
        b = run_campaign(bench, "fp32", 80, seed=3, injector=injector)
        assert [r.outcome for r in a.general] == \
            [r.outcome for r in b.general]

    def test_fu_faults_never_due(self, small_reports):
        for report in small_reports:
            if report.module in ("fp32", "int"):
                assert report.n_due == 0

    def test_fu_faults_single_thread(self, small_reports):
        # paper Fig. 4: INT/FP32 functional-unit SDCs corrupt one thread
        for report in small_reports:
            if report.module in ("fp32", "int"):
                assert report.n_sdc_multiple == 0


class TestRunGrid:
    def test_cell_pairing(self, injector):
        reports = run_grid(
            opcodes=[Opcode.FADD, Opcode.GLD],
            input_ranges=["M"],
            modules=["fp32", "pipeline"],
            n_faults=30,
            seed=11,
            injector=injector,
        )
        cells = {(r.instruction, r.module) for r in reports}
        assert cells == {("FADD", "fp32"), ("FADD", "pipeline"),
                         ("GLD", "pipeline")}

    def test_unknown_range_rejected(self, injector):
        with pytest.raises(CampaignError):
            run_grid(input_ranges=["Q"], n_faults=5, injector=injector)
