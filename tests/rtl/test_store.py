"""Campaign-store persistence tests."""

import json

import pytest

from repro.errors import ReproError
from repro.rtl.store import CampaignStore


@pytest.fixture
def store(tmp_path, small_reports):
    store = CampaignStore(tmp_path / "campaigns")
    store.add_all(small_reports)
    return store


class TestStore:
    def test_roundtrip(self, store, small_reports):
        loaded = store.load(store.keys()[0])
        original = next(
            r for r in small_reports
            if CampaignStore._key_for(r) == store.keys()[0])
        assert loaded.n_injections == original.n_injections
        assert loaded.n_sdc == original.n_sdc
        assert len(loaded.detailed) == len(original.detailed)

    def test_index_summary(self, store, small_reports):
        summary = store.summary()
        assert len(summary) == len(store)
        assert all({"key", "instruction", "module", "n_sdc"}
                   <= set(entry) for entry in summary)

    def test_filtered_loading(self, store):
        fadds = list(store.load_all(instruction="FADD"))
        assert fadds and all(r.instruction == "FADD" for r in fadds)
        fp32 = list(store.load_all(module="fp32", input_range="M"))
        assert all(r.module == "fp32" and r.input_range == "M"
                   for r in fp32)

    def test_reopen_preserves_index(self, store):
        reopened = CampaignStore(store.root)
        assert reopened.keys() == store.keys()

    def test_overwrite_same_cell(self, store, small_reports):
        before = len(store)
        store.add(small_reports[0])  # same key again
        assert len(store) == before

    def test_missing_key(self, store):
        with pytest.raises(ReproError):
            store.load("nope")

    def test_corrupt_index_detected(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "index.json").write_text("{broken")
        with pytest.raises(ReproError):
            CampaignStore(root)

    def test_database_buildable_from_store(self, store):
        from repro.syndrome import build_database

        db = build_database(store.load_all())
        assert db.entries()


class TestAdaptiveCampaign:
    def test_stops_when_tight(self):
        import numpy as np

        from repro.apps.base import GPUApplication
        from repro.swfi import SingleBitFlip
        from repro.swfi.campaign import run_pvf_until

        class Tiny(GPUApplication):
            name = "tiny"

            def run(self, ops):
                return ops.fadd(np.arange(8, dtype=np.float32), 1.0)

        report = run_pvf_until(Tiny(), SingleBitFlip(),
                               target_halfwidth=0.08,
                               min_injections=50, max_injections=2000,
                               seed=0)
        low, high = report.confidence_interval()
        assert (high - low) / 2 <= 0.08
        assert report.n_injections <= 2000

    def test_validation(self):
        from repro.apps import MatrixMultiply
        from repro.swfi import SingleBitFlip
        from repro.swfi.campaign import run_pvf_until

        with pytest.raises(ValueError):
            run_pvf_until(MatrixMultiply(n=8, tile=8), SingleBitFlip(),
                          target_halfwidth=0.0)
        with pytest.raises(ValueError):
            run_pvf_until(MatrixMultiply(n=8, tile=8), SingleBitFlip(),
                          min_injections=5)
