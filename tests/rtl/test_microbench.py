"""Micro-benchmark construction and golden-execution tests."""

import math

import numpy as np
import pytest

from repro.gpu import Opcode
from repro.gpu.bits import bits_to_float, bits_to_int
from repro.rtl import (
    INPUT_RANGES,
    all_microbenchmarks,
    make_microbenchmark,
)
from repro.rtl.microbench import ADDR_A, ADDR_B, ADDR_OUT, N_THREADS


class TestConstruction:
    def test_all_twelve_opcodes(self):
        benches = all_microbenchmarks("M", seed=1)
        assert len(benches) == 12
        assert {b.opcode for b in benches} == set(
            __import__("repro.gpu.isa", fromlist=["x"]
                       ).CHARACTERIZED_OPCODES)

    def test_unknown_range_rejected(self):
        with pytest.raises(ValueError):
            make_microbenchmark(Opcode.FADD, "XL")

    def test_uncharacterized_opcode_rejected(self):
        with pytest.raises(ValueError):
            make_microbenchmark(Opcode.MOV)

    def test_paper_input_ranges(self):
        assert INPUT_RANGES["S"].lo == pytest.approx(6.8e-6)
        assert INPUT_RANGES["S"].hi == pytest.approx(7.3e-6)
        assert INPUT_RANGES["M"].lo == pytest.approx(1.8)
        assert INPUT_RANGES["L"].hi == pytest.approx(12.5e9)

    def test_inputs_within_declared_range(self):
        bench = make_microbenchmark(Opcode.FADD, "M", seed=5)
        values = [bits_to_float(w) for w in bench.memory_image[ADDR_A]]
        assert all(1.8 <= v <= 59.4 for v in values)

    def test_sixty_four_threads_two_warps(self):
        bench = make_microbenchmark(Opcode.IADD, "S")
        assert bench.n_threads == N_THREADS == 64

    def test_seed_determinism(self):
        a = make_microbenchmark(Opcode.FMUL, "L", seed=9)
        b = make_microbenchmark(Opcode.FMUL, "L", seed=9)
        assert a.memory_image == b.memory_image


class TestGoldenExecution:
    @pytest.mark.parametrize("range_key", ["S", "M", "L"])
    def test_fadd_golden_values(self, injector, range_key):
        bench = make_microbenchmark(Opcode.FADD, range_key, seed=2)
        golden = injector.run_golden(bench)
        a = [bits_to_float(w) for w in bench.memory_image[ADDR_A]]
        b = [bits_to_float(w) for w in bench.memory_image[ADDR_B]]
        out = [bits_to_float(w) for w in golden.regions[0]]
        for x, y, z in zip(a, b, out):
            assert z == float(np.float32(x) + np.float32(y))

    def test_imad_golden_values(self, injector):
        bench = make_microbenchmark(Opcode.IMAD, "M", seed=2)
        golden = injector.run_golden(bench)
        from repro.rtl.microbench import ADDR_C

        a = [bits_to_int(w) for w in bench.memory_image[ADDR_A]]
        b = [bits_to_int(w) for w in bench.memory_image[ADDR_B]]
        c = [bits_to_int(w) for w in bench.memory_image[ADDR_C]]
        out = list(golden.regions[0])
        for x, y, z, got in zip(a, b, c, out):
            assert got == (x * y + z) & 0xFFFFFFFF

    def test_fsin_golden_values(self, injector):
        bench = make_microbenchmark(Opcode.FSIN, "M", seed=2)
        golden = injector.run_golden(bench)
        x = [bits_to_float(w) for w in bench.memory_image[ADDR_A]]
        out = [bits_to_float(w) for w in golden.regions[0]]
        for value, got in zip(x, out):
            assert got == pytest.approx(math.sin(value), abs=1e-5)

    def test_memory_bench_copies_input(self, injector):
        bench = make_microbenchmark(Opcode.GLD, "M", seed=2)
        golden = injector.run_golden(bench)
        assert list(golden.regions[0]) == list(bench.memory_image[ADDR_A])

    def test_branch_bench_takes_branch_and_reconverges(self, injector):
        bench = make_microbenchmark(Opcode.BRA, "M", seed=2)
        golden = injector.run_golden(bench)
        markers = list(golden.regions[0])
        sentinels = list(golden.regions[1])
        a = [bits_to_int(w) for w in bench.memory_image[ADDR_A]]
        assert markers == [(v + 1) & 0xFFFFFFFF for v in a]
        assert sentinels == [0xC0DE] * 64

    def test_iset_bench_flags(self, injector):
        bench = make_microbenchmark(Opcode.ISET, "M", seed=2)
        golden = injector.run_golden(bench)
        a = [bits_to_int(w) for w in bench.memory_image[ADDR_A]]
        b = [bits_to_int(w) for w in bench.memory_image[ADDR_B]]
        for x, y, flags in zip(a, b, golden.regions[0]):
            expected = ((x < y) << 2) | ((x == y) << 1) | (x >= y)
            assert flags == expected

    @pytest.mark.parametrize("opcode", [
        Opcode.FADD, Opcode.FMUL, Opcode.FFMA, Opcode.IADD, Opcode.IMUL,
        Opcode.IMAD, Opcode.FSIN, Opcode.FEXP, Opcode.GLD, Opcode.GST,
        Opcode.BRA, Opcode.ISET,
    ])
    def test_every_bench_runs_golden(self, injector, opcode):
        bench = make_microbenchmark(opcode, "M", seed=4)
        golden = injector.run_golden(bench)
        assert golden.cycles > 0
        assert golden.total_words >= 64
