"""Robustness: no fault, anywhere, may crash the framework itself.

Random transients across *every* declared flip-flop (all modules at once)
must always resolve to Masked, SDC or DUE — never to an unhandled Python
exception, an infinite loop, or a corrupted injector state.  This is the
failure-injection analogue of a fuzz test for the whole RTL substrate.
"""

import numpy as np
import pytest

from repro.errors import FaultDecayedError, GpuHardwareError
from repro.gpu import Opcode
from repro.gpu.fault_plane import TransientFault
from repro.rng import make_rng
from repro.rtl import (
    RTLInjector,
    make_microbenchmark,
    make_tmxm_bench,
)
from repro.rtl.classify import Outcome


def _random_faults(plane, cycles, count, seed, max_burst=16):
    rng = make_rng(seed)
    flipflops = plane.flipflops()
    faults = []
    for _ in range(count):
        ff = flipflops[int(rng.integers(len(flipflops)))]
        bit = int(rng.integers(ff.width))
        n_bits = int(rng.integers(1, min(ff.width, max_burst) + 1))
        # spans past the register top are construction errors now; the
        # clamped span has the same mask the old clamping produced
        n_bits = min(n_bits, ff.width - bit)
        cycle = int(rng.integers(cycles))
        window = int(rng.integers(1, 8))
        faults.append(TransientFault(ff, bit, cycle, window=window,
                                     n_bits=n_bits))
    return faults


@pytest.mark.parametrize("bench_factory,seed", [
    (lambda: make_microbenchmark(Opcode.FFMA, "L", seed=5), 101),
    (lambda: make_microbenchmark(Opcode.FSIN, "S", seed=5), 102),
    (lambda: make_microbenchmark(Opcode.BRA, "M", seed=5), 103),
    (lambda: make_tmxm_bench("Random", seed=5), 104),
])
def test_whole_plane_fuzz(injector, bench_factory, seed):
    bench = bench_factory()
    golden = injector.run_golden(bench)
    outcomes = set()
    for fault in _random_faults(injector.plane, golden.cycles, 120, seed):
        result = injector.inject(bench, golden, fault)
        outcomes.add(result.outcome)
        # the injector must leave the plane clean for the next run
        assert injector.plane.armed_fault is None
    assert Outcome.MASKED in outcomes  # sanity: fuzz actually ran


def test_every_module_injectable_everywhere(injector):
    """Each module accepts faults on each characterised workload."""
    bench = make_tmxm_bench("Max", seed=6)
    golden = injector.run_golden(bench)
    rng = make_rng(7)
    for module in ("fp32", "int", "scheduler", "pipeline"):
        flipflops = injector.plane.flipflops(module)
        for _ in range(25):
            ff = flipflops[int(rng.integers(len(flipflops)))]
            fault = TransientFault(ff, int(rng.integers(ff.width)),
                                   int(rng.integers(golden.cycles)))
            result = injector.inject(bench, golden, fault)
            assert result.outcome in (Outcome.MASKED, Outcome.SDC,
                                      Outcome.DUE)


def test_golden_state_isolated_between_runs(injector):
    """A fault run must not leak state into the next golden run."""
    bench = make_microbenchmark(Opcode.IMUL, "M", seed=8)
    before = injector.run_golden(bench)
    rng = make_rng(9)
    flipflops = injector.plane.flipflops("int")
    for _ in range(40):
        ff = flipflops[int(rng.integers(len(flipflops)))]
        fault = TransientFault(ff, int(rng.integers(ff.width)),
                               int(rng.integers(before.cycles)),
                               window=10)
        injector.inject(bench, before, fault)
    after = injector.run_golden(bench)
    assert before == after
