"""Run-classification tests."""

import math

import pytest

from repro.gpu.bits import float_to_bits
from repro.rtl.classify import (
    CorruptedValue,
    Outcome,
    RunClassification,
    classify_run,
    corruption_histogram,
)


class TestClassifyRun:
    def test_masked(self):
        result = classify_run([[1, 2, 3]], [[1, 2, 3]], [0x100])
        assert result.outcome is Outcome.MASKED
        assert result.n_corrupted_threads == 0

    def test_single_sdc(self):
        result = classify_run([[1, 2, 3]], [[1, 9, 3]], [0x100])
        assert result.outcome is Outcome.SDC
        assert result.n_corrupted_threads == 1
        assert not result.is_multiple
        value = result.corrupted[0]
        assert value.thread == 1
        assert value.address == 0x101
        assert value.golden_bits == 2 and value.faulty_bits == 9

    def test_multiple_sdc(self):
        result = classify_run([[1, 2], [3, 4]], [[9, 2], [3, 8]],
                              [0x100, 0x200])
        assert result.is_multiple
        assert result.n_corrupted_threads == 2

    def test_region_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            classify_run([[1]], [[1], [2]], [0, 4])

    def test_region_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            classify_run([[1, 2]], [[1]], [0])

    def test_multi_bit_corruption_per_word(self):
        # a multi-bit fault (stuck-at span / burst) flips several bits of
        # one output word; the classification reports them all
        result = classify_run([[0b0000, 0]], [[0b1011, 0]], [0x100])
        assert result.outcome is Outcome.SDC
        value = result.corrupted[0]
        assert value.n_flipped_bits == 3
        assert value.flipped_bits == [0, 1, 3]

    def test_due_classification_shape(self):
        # DUE runs never reach classify_run: the injector (or the unit
        # timeout) builds the record directly — pin its shape
        due = RunClassification(Outcome.DUE,
                                due_reason="GpuHangError: deadlock")
        assert due.outcome is Outcome.DUE
        assert due.due_reason == "GpuHangError: deadlock"
        assert due.fault_fired  # fired unless the injector says otherwise
        assert due.corrupted == [] and not due.is_multiple

    def test_due_with_unfired_fault(self):
        due = RunClassification(Outcome.DUE, due_reason="timeout",
                                fault_fired=False)
        assert not due.fault_fired
        assert due.n_corrupted_threads == 0


class TestCorruptionHistogram:
    def test_empty_run_yields_empty_histogram(self):
        assert corruption_histogram([]) == {}

    def test_counts_words_by_flipped_bits(self):
        result = classify_run(
            [[0b0000, 0b0000, 0b0000]],
            [[0b0001, 0b0011, 0b1000]],
            [0x100])
        assert corruption_histogram(result.corrupted) == {1: 2, 2: 1}

    def test_histogram_sorted_by_bit_count(self):
        corrupted = [
            CorruptedValue(0, 0, 0, 0b111),
            CorruptedValue(1, 4, 0, 0b1),
            CorruptedValue(2, 8, 0, 0b11),
        ]
        assert list(corruption_histogram(corrupted)) == [1, 2, 3]


class TestCorruptedValue:
    def test_flipped_bits(self):
        value = CorruptedValue(0, 0, golden_bits=0b1010, faulty_bits=0b0011)
        assert value.flipped_bits == [0, 3]
        assert value.n_flipped_bits == 2

    def test_relative_error_float(self):
        value = CorruptedValue(0, 0, float_to_bits(2.0), float_to_bits(3.0))
        assert value.relative_error_f32() == pytest.approx(0.5)

    def test_relative_error_nan_is_inf(self):
        value = CorruptedValue(0, 0, float_to_bits(2.0), 0x7FC00000)
        assert math.isinf(value.relative_error_f32())

    def test_relative_error_int(self):
        value = CorruptedValue(0, 0, 10, 15)
        assert value.relative_error_int() == pytest.approx(0.5)

    def test_relative_error_int_zero_golden(self):
        value = CorruptedValue(0, 0, 0, 7)
        assert value.relative_error_int() == 7.0

    def test_value_kind_dispatch(self):
        value = CorruptedValue(0, 0, 10, 20)
        assert value.relative_error_value("u32") == pytest.approx(1.0)
