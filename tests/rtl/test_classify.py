"""Run-classification tests."""

import math

import pytest

from repro.gpu.bits import float_to_bits
from repro.rtl.classify import (
    CorruptedValue,
    Outcome,
    RunClassification,
    classify_run,
)


class TestClassifyRun:
    def test_masked(self):
        result = classify_run([[1, 2, 3]], [[1, 2, 3]], [0x100])
        assert result.outcome is Outcome.MASKED
        assert result.n_corrupted_threads == 0

    def test_single_sdc(self):
        result = classify_run([[1, 2, 3]], [[1, 9, 3]], [0x100])
        assert result.outcome is Outcome.SDC
        assert result.n_corrupted_threads == 1
        assert not result.is_multiple
        value = result.corrupted[0]
        assert value.thread == 1
        assert value.address == 0x101
        assert value.golden_bits == 2 and value.faulty_bits == 9

    def test_multiple_sdc(self):
        result = classify_run([[1, 2], [3, 4]], [[9, 2], [3, 8]],
                              [0x100, 0x200])
        assert result.is_multiple
        assert result.n_corrupted_threads == 2

    def test_region_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            classify_run([[1]], [[1], [2]], [0, 4])

    def test_region_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            classify_run([[1, 2]], [[1]], [0])


class TestCorruptedValue:
    def test_flipped_bits(self):
        value = CorruptedValue(0, 0, golden_bits=0b1010, faulty_bits=0b0011)
        assert value.flipped_bits == [0, 3]
        assert value.n_flipped_bits == 2

    def test_relative_error_float(self):
        value = CorruptedValue(0, 0, float_to_bits(2.0), float_to_bits(3.0))
        assert value.relative_error_f32() == pytest.approx(0.5)

    def test_relative_error_nan_is_inf(self):
        value = CorruptedValue(0, 0, float_to_bits(2.0), 0x7FC00000)
        assert math.isinf(value.relative_error_f32())

    def test_relative_error_int(self):
        value = CorruptedValue(0, 0, 10, 15)
        assert value.relative_error_int() == pytest.approx(0.5)

    def test_relative_error_int_zero_golden(self):
        value = CorruptedValue(0, 0, 0, 7)
        assert value.relative_error_int() == 7.0

    def test_value_kind_dispatch(self):
        value = CorruptedValue(0, 0, 10, 20)
        assert value.relative_error_value("u32") == pytest.approx(1.0)
