"""Fault-list generation tests."""

import pytest

from repro.errors import CampaignError
from repro.gpu.fault_plane import FaultPlane, FlipFlop
from repro.rtl.faultlist import exhaustive_fault_list, generate_fault_list


@pytest.fixture
def plane():
    plane = FaultPlane()
    plane.declare(FlipFlop("fp32", "wide", 30, 0, "data"))
    plane.declare(FlipFlop("fp32", "narrow", 2, 0, "control"))
    plane.declare(FlipFlop("int", "other", 8, 0, "data"))
    return plane


class TestGenerate:
    def test_count_and_targets(self, plane):
        faults = generate_fault_list(plane, "fp32", 50, total_cycles=100,
                                     seed=1)
        assert len(faults) == 50
        assert all(f.flipflop.module == "fp32" for f in faults)
        assert all(0 <= f.cycle < 100 for f in faults)
        assert all(0 <= f.bit < f.flipflop.width for f in faults)

    def test_width_weighted_sampling(self, plane):
        faults = generate_fault_list(plane, "fp32", 3000, total_cycles=10,
                                     seed=2)
        wide = sum(1 for f in faults if f.flipflop.name == "wide")
        # wide register holds 30/32 of the module's bits
        assert 0.85 <= wide / len(faults) <= 1.0

    def test_kind_filter(self, plane):
        faults = generate_fault_list(plane, "fp32", 20, total_cycles=10,
                                     seed=3, kind="control")
        assert all(f.flipflop.kind == "control" for f in faults)

    def test_seed_determinism(self, plane):
        first = generate_fault_list(plane, "int", 10, 50, seed=4)
        second = generate_fault_list(plane, "int", 10, 50, seed=4)
        assert [(f.flipflop.key, f.bit, f.cycle) for f in first] == \
            [(f.flipflop.key, f.bit, f.cycle) for f in second]

    def test_empty_module_rejected(self, plane):
        with pytest.raises(CampaignError):
            generate_fault_list(plane, "sfu", 5, 10)

    def test_bad_cycles_rejected(self, plane):
        with pytest.raises(CampaignError):
            generate_fault_list(plane, "fp32", 5, 0)


class TestExhaustive:
    def test_covers_every_bit(self, plane):
        faults = exhaustive_fault_list(plane, "int", cycles=[0, 5])
        assert len(faults) == 8 * 2
        bits = {(f.bit, f.cycle) for f in faults}
        assert bits == {(b, c) for b in range(8) for c in (0, 5)}
