"""Fault-list generation tests."""

import pytest

from repro.errors import CampaignError
from repro.gpu.fault_plane import (
    FaultPlane,
    FlipFlop,
    StuckAtFault,
    TargetedBurst,
    TransientFault,
)
from repro.rtl.faultlist import (
    exhaustive_fault_list,
    exhaustive_stuck_at_list,
    generate_fault_list,
    generate_model_fault_list,
)


@pytest.fixture
def plane():
    plane = FaultPlane()
    plane.declare(FlipFlop("fp32", "wide", 30, 0, "data"))
    plane.declare(FlipFlop("fp32", "narrow", 2, 0, "control"))
    plane.declare(FlipFlop("int", "other", 8, 0, "data"))
    return plane


class TestGenerate:
    def test_count_and_targets(self, plane):
        faults = generate_fault_list(plane, "fp32", 50, total_cycles=100,
                                     seed=1)
        assert len(faults) == 50
        assert all(f.flipflop.module == "fp32" for f in faults)
        assert all(0 <= f.cycle < 100 for f in faults)
        assert all(0 <= f.bit < f.flipflop.width for f in faults)

    def test_width_weighted_sampling(self, plane):
        faults = generate_fault_list(plane, "fp32", 3000, total_cycles=10,
                                     seed=2)
        wide = sum(1 for f in faults if f.flipflop.name == "wide")
        # wide register holds 30/32 of the module's bits
        assert 0.85 <= wide / len(faults) <= 1.0

    def test_kind_filter(self, plane):
        faults = generate_fault_list(plane, "fp32", 20, total_cycles=10,
                                     seed=3, kind="control")
        assert all(f.flipflop.kind == "control" for f in faults)

    def test_seed_determinism(self, plane):
        first = generate_fault_list(plane, "int", 10, 50, seed=4)
        second = generate_fault_list(plane, "int", 10, 50, seed=4)
        assert [(f.flipflop.key, f.bit, f.cycle) for f in first] == \
            [(f.flipflop.key, f.bit, f.cycle) for f in second]

    def test_empty_module_rejected(self, plane):
        with pytest.raises(CampaignError):
            generate_fault_list(plane, "sfu", 5, 10)

    def test_bad_cycles_rejected(self, plane):
        with pytest.raises(CampaignError):
            generate_fault_list(plane, "fp32", 5, 0)


class TestExhaustive:
    def test_covers_every_bit(self, plane):
        faults = exhaustive_fault_list(plane, "int", cycles=[0, 5])
        assert len(faults) == 8 * 2
        bits = {(f.bit, f.cycle) for f in faults}
        assert bits == {(b, c) for b in range(8) for c in (0, 5)}


class TestModelFaultLists:
    def test_transient_delegates_unchanged(self, plane):
        direct = generate_fault_list(plane, "fp32", 15, 40, seed=9)
        routed = generate_model_fault_list(plane, "fp32", 15, 40, seed=9,
                                           fault_model="transient")
        assert routed == direct
        assert all(type(f) is TransientFault for f in routed)

    def test_stuck_at_list_shape(self, plane):
        faults = generate_model_fault_list(plane, "fp32", 25, 40, seed=1,
                                           fault_model="stuck-at")
        assert len(faults) == 25
        assert all(type(f) is StuckAtFault for f in faults)
        assert all(f.cycle == 0 for f in faults)  # defect from power-on
        assert {f.stuck_at for f in faults} <= {0, 1}
        for f in faults:
            assert 0 <= f.bit < f.flipflop.width

    def test_burst_spans_clamped_to_width(self, plane):
        faults = generate_model_fault_list(plane, "fp32", 40, 40, seed=2,
                                           fault_model="burst",
                                           burst_width=8, burst_window=3)
        assert all(type(f) is TargetedBurst for f in faults)
        for f in faults:
            assert f.bit + f.n_bits <= f.flipflop.width
            assert f.window == 3

    def test_unknown_model_rejected(self, plane):
        with pytest.raises(CampaignError):
            generate_model_fault_list(plane, "fp32", 5, 10,
                                      fault_model="gamma-ray")

    def test_model_namespaces_are_independent(self, plane):
        # stuck-at sampling draws from its own spawn-key namespace, so a
        # permanent campaign never shifts the transient fault stream
        before = generate_fault_list(plane, "fp32", 10, 40, seed=7)
        generate_model_fault_list(plane, "fp32", 10, 40, seed=7,
                                  fault_model="stuck-at")
        after = generate_fault_list(plane, "fp32", 10, 40, seed=7)
        assert before == after

    def test_stuck_at_and_burst_streams_differ(self, plane):
        stuck = generate_model_fault_list(plane, "fp32", 10, 40, seed=7,
                                          fault_model="stuck-at")
        burst = generate_model_fault_list(plane, "fp32", 10, 40, seed=7,
                                          fault_model="burst")
        assert [f.flipflop.key for f in stuck] != \
            [f.flipflop.key for f in burst] or \
            [f.bit for f in stuck] != [f.bit for f in burst]

    def test_exhaustive_stuck_at_covers_both_polarities(self, plane):
        faults = exhaustive_stuck_at_list(plane, "int")
        assert len(faults) == 8 * 2
        seen = {(f.bit, f.stuck_at) for f in faults}
        assert seen == {(b, p) for b in range(8) for p in (0, 1)}
