"""Permanent-fault signature campaigns: planning, merging, artifacts."""

import json

import pytest

from repro.artifacts import dump_artifact, load_artifact
from repro.errors import CampaignError
from repro.outcomes import Outcome
from repro.rtl import (
    RTLInjector,
    default_signature_apps,
    run_signature_campaign,
)
from repro.rtl.signatures import SignatureReport


@pytest.fixture(scope="module")
def injector():
    return RTLInjector()


@pytest.fixture(scope="module")
def report(injector):
    return run_signature_campaign("sfu_controller", 4, seed=3,
                                  injector=injector)


class TestDefaultApps:
    def test_functional_modules_use_their_opcodes(self):
        apps = default_signature_apps("sfu_controller")
        assert apps and all("/" in app for app in apps)
        assert all(not app.startswith("tmxm/") for app in apps)

    def test_structural_modules_use_tmxm_tiles(self):
        apps = default_signature_apps("scheduler")
        assert apps and all(app.startswith("tmxm/") for app in apps)

    def test_unknown_module_rejected(self):
        with pytest.raises(CampaignError):
            default_signature_apps("dram")


class TestSignatureCampaign:
    def test_one_record_per_fault_app_pair(self, report):
        assert report.n_faults == 4
        assert report.n_records == 4 * len(report.apps)
        assert report.fault_model == "stuck-at"
        for record in report.records:
            assert record.app in report.apps
            assert record.fault["model"] == "stuck-at"

    def test_fault_major_unit_order(self, report):
        pairs = [(r.fault_index, report.apps.index(r.app))
                 for r in report.records]
        assert pairs == sorted(pairs)

    def test_error_signature_covers_suite(self, report):
        signature = report.error_signature(0)
        assert set(signature) == set(report.apps)
        for entry in signature.values():
            assert entry["outcome"] in {o.value for o in Outcome}

    def test_distinct_signatures_total_faults(self, report):
        assert sum(report.distinct_signatures().values()) == 4

    def test_per_app_summary_totals(self, report):
        for app, row in report.per_app_summary().items():
            assert row["n_faults"] == 4
            assert row["masked"] + row["sdc"] + row["due"] == 4

    def test_deterministic_rerun(self, injector, report):
        again = run_signature_campaign("sfu_controller", 4, seed=3,
                                       injector=injector)
        assert again.to_dict() == report.to_dict()

    def test_parallel_merge_bit_identical(self, injector, report):
        parallel = run_signature_campaign("sfu_controller", 4, seed=3,
                                          n_jobs=2)
        assert parallel.to_dict() == report.to_dict()

    def test_explicit_app_suite(self, injector):
        report = run_signature_campaign(
            "sfu_controller", 2, seed=0, apps=["FSIN/S", "FSIN/L"],
            injector=injector)
        assert report.apps == ["FSIN/S", "FSIN/L"]
        assert report.n_records == 4

    def test_transient_model_rejected(self, injector):
        with pytest.raises(CampaignError, match="permanent"):
            run_signature_campaign("sfu_controller", 2,
                                   fault_model="transient",
                                   injector=injector)

    def test_bad_app_spec_rejected(self, injector):
        with pytest.raises(CampaignError):
            run_signature_campaign("sfu_controller", 2,
                                   apps=["NOPCODE/M"], injector=injector)

    def test_app_from_foreign_module_rejected(self, injector):
        # FADD exercises fp32, not the sfu controller: the campaign
        # refuses a suite that cannot observe the faulted module
        with pytest.raises(CampaignError):
            run_signature_campaign("sfu_controller", 2, apps=["FADD/M"],
                                   injector=injector)

    def test_checkpoint_resume_bit_identical(self, injector, report,
                                             tmp_path):
        journal = tmp_path / "signature.jsonl"
        first = run_signature_campaign("sfu_controller", 4, seed=3,
                                       injector=injector,
                                       checkpoint=journal)
        assert journal.exists()
        resumed = run_signature_campaign("sfu_controller", 4, seed=3,
                                         injector=injector,
                                         checkpoint=journal, resume=True)
        assert first.to_dict() == resumed.to_dict() == report.to_dict()


class TestSignatureSerde:
    def test_artifact_roundtrip(self, report):
        payload = json.loads(json.dumps(
            dump_artifact("signature-report", report)))
        clone = load_artifact("signature-report", payload)
        assert isinstance(clone, SignatureReport)
        assert clone.to_dict() == report.to_dict()

    def test_merge_validates_provenance(self, report):
        other = SignatureReport(module="fp32", fault_model="stuck-at",
                                n_faults=4, apps=list(report.apps),
                                seed=3)
        with pytest.raises(ValueError):
            SignatureReport.merge([report, other])

    def test_patterns_mine_signature_reports(self, report):
        from repro.analytics import mine_patterns

        mined = mine_patterns(report)
        assert mined.source == "signature"
        assert mined.cell == {"module": report.module,
                              "fault_model": "stuck-at"}
        assert len(mined.signatures) == len(report.apps)
        histogram = mined.spatial["signature_histogram"]
        assert sum(row["faults"] for row in histogram) == report.n_faults
