"""RTL injector tests."""

import pytest

from repro.gpu import Opcode
from repro.gpu.fault_plane import FlipFlop, TransientFault
from repro.rtl import RTLInjector, make_microbenchmark
from repro.rtl.classify import Outcome


@pytest.fixture(scope="module")
def bench():
    return make_microbenchmark(Opcode.FADD, "M", seed=8)


class TestGolden:
    def test_snapshot_regions(self, injector, bench):
        golden = injector.run_golden(bench)
        assert len(golden.regions) == 1
        assert len(golden.regions[0]) == 64
        assert golden.cycles > 0

    def test_golden_reproducible(self, injector, bench):
        first = injector.run_golden(bench)
        second = injector.run_golden(bench)
        assert first == second


class TestInject:
    def test_never_latched_register_is_masked(self, injector, bench):
        golden = injector.run_golden(bench)
        # warps 2..7 are idle in a 64-thread bench: their state never latches
        ff = FlipFlop("scheduler", "warp.pc", 12, 7, "control")
        fault = TransientFault(ff, 0, cycle=1)
        result = injector.inject(bench, golden, fault)
        assert result.outcome is Outcome.MASKED
        assert not result.fault_fired

    def test_sign_fault_is_sdc(self, injector, bench):
        golden = injector.run_golden(bench)
        ff = FlipFlop("fp32", "round.result", 32, 0, "data")
        # huge window so it lands on lane 0's first result latch
        fault = TransientFault(ff, 31, cycle=0, window=10_000)
        result = injector.inject(bench, golden, fault)
        assert result.outcome is Outcome.SDC
        assert result.n_corrupted_threads == 1
        assert result.corrupted[0].flipped_bits == [31]

    def test_fault_reuse_is_reset(self, injector, bench):
        golden = injector.run_golden(bench)
        ff = FlipFlop("fp32", "round.result", 32, 0, "data")
        fault = TransientFault(ff, 31, cycle=0, window=10_000)
        first = injector.inject(bench, golden, fault)
        second = injector.inject(bench, golden, fault)
        assert first.outcome == second.outcome
        assert fault.fired

    def test_describe(self, injector):
        ff = FlipFlop("int", "result", 32, 2, "data")
        descriptor = RTLInjector.describe(TransientFault(ff, 7, 42))
        assert descriptor.module == "int"
        assert descriptor.register == "result"
        assert descriptor.lane == 2
        assert descriptor.bit == 7
        assert descriptor.cycle == 42
