"""Byte-diff guard: transient campaigns vs the pre-refactor engine.

``tests/fixtures/artifacts/transient_grid_report.json`` was produced by
the transient-only campaign engine *before* the pluggable fault-model
refactor (``json.dumps([r.to_dict() for r in reports]) + "\\n"``, compact
separators).  The fault-model layer claims to be behavior-preserving for
transient campaigns; this test is the proof, and the CI
``fault-model-smoke`` job runs it on every push.  A mismatch means the
default fault path changed — bump the fixture only with an explicit
reproducibility break (and say so in the changelog).
"""

import json
from pathlib import Path

from repro.gpu import Opcode
from repro.rtl import RTLInjector, run_grid

GOLDEN = (Path(__file__).parent.parent / "fixtures" / "artifacts"
          / "transient_grid_report.json")

#: The exact grid the fixture was generated from (pre-refactor engine).
GRID = dict(opcodes=[Opcode.FADD, Opcode.IADD], input_ranges=("M",),
            n_faults=25, seed=11)


def test_transient_grid_byte_identical_to_pre_refactor_engine():
    reports = run_grid(injector=RTLInjector(), **GRID)
    produced = json.dumps([r.to_dict() for r in reports]) + "\n"
    assert produced == GOLDEN.read_text(), (
        "transient campaign output drifted from the pre-refactor golden "
        "fixture — the default fault model is no longer "
        "behavior-preserving")
