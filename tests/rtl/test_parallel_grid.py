"""Parallel campaign-grid tests."""

import pytest

from repro.errors import CampaignError
from repro.gpu import Opcode
from repro.rtl import RTLInjector, run_grid


class TestParallelGrid:
    def test_matches_serial(self):
        kwargs = dict(opcodes=[Opcode.IADD], input_ranges=["M"],
                      modules=["int"], n_faults=80, seed=6)
        serial = run_grid(**kwargs)
        parallel = run_grid(n_jobs=2, **kwargs)
        assert len(serial) == len(parallel) == 1
        assert serial[0].n_sdc == parallel[0].n_sdc
        assert serial[0].n_due == parallel[0].n_due
        assert [r.outcome for r in serial[0].general] == \
            [r.outcome for r in parallel[0].general]

    def test_shared_injector_rejected_with_workers(self):
        with pytest.raises(CampaignError):
            run_grid(opcodes=[Opcode.IADD], input_ranges=["M"],
                     n_faults=10, n_jobs=2, injector=RTLInjector())

    def test_invalid_job_count(self):
        with pytest.raises(CampaignError):
            run_grid(opcodes=[Opcode.IADD], n_faults=10, n_jobs=0)
