"""Parallel / checkpointed campaign-grid tests.

Mirrors the SWFI suite's invariant on the RTL side: cell and fault-batch
randomness depend only on the unit index (child seed of the campaign
seed), so a grid's reports are bit-identical whether its units ran
serially, across worker processes, or split over a checkpoint/resume
boundary.
"""

import pytest

from repro.errors import CampaignError
from repro.gpu import Opcode
from repro.rtl import RTLInjector, run_campaign, run_grid, run_tmxm_grid
from repro.rtl.classify import Outcome
from repro.rtl.microbench import make_microbenchmark

GRID = dict(opcodes=[Opcode.FADD, Opcode.IADD], input_ranges=["M"],
            modules=["scheduler"], n_faults=60, seed=6)


class TestParallelGrid:
    def test_matches_serial(self):
        kwargs = dict(opcodes=[Opcode.IADD], input_ranges=["M"],
                      modules=["int"], n_faults=80, seed=6)
        serial = run_grid(**kwargs)
        parallel = run_grid(n_jobs=2, **kwargs)
        assert len(serial) == len(parallel) == 1
        assert serial[0].n_sdc == parallel[0].n_sdc
        assert serial[0].n_due == parallel[0].n_due
        assert [r.outcome for r in serial[0].general] == \
            [r.outcome for r in parallel[0].general]

    def test_shared_injector_rejected_with_workers(self):
        with pytest.raises(CampaignError):
            run_grid(opcodes=[Opcode.IADD], input_ranges=["M"],
                     n_faults=10, n_jobs=2, injector=RTLInjector())

    def test_invalid_job_count(self):
        with pytest.raises(CampaignError):
            run_grid(opcodes=[Opcode.IADD], n_faults=10, n_jobs=0)


class TestBatchSharding:
    def test_batched_parallel_bit_identical(self):
        """Intra-cell fault batches merge back to the serial report."""
        serial = run_grid(batch_size=20, **GRID)
        parallel = run_grid(batch_size=20, n_jobs=2, **GRID)
        assert [r.to_dict() for r in serial] == \
            [r.to_dict() for r in parallel]

    def test_unbatched_default_matches_historical_campaign(self, injector):
        """batch_size=None keeps the exact PR-1 fault streams."""
        reports = run_grid(opcodes=[Opcode.FADD], input_ranges=["M"],
                           modules=["fp32"], n_faults=40, seed=3,
                           injector=injector)
        from repro.rng import spawn_seeds

        cell_seed = spawn_seeds(3, 1)[0]
        bench = make_microbenchmark(Opcode.FADD, "M", seed=cell_seed)
        single = run_campaign(bench, "fp32", 40, seed=cell_seed,
                              injector=injector)
        assert reports[0].to_dict() == single.to_dict()

    def test_single_campaign_batched_matches_unbatched_total(self,
                                                             injector):
        bench = make_microbenchmark(Opcode.IADD, "M", seed=1)
        report = run_campaign(bench, "int", 50, seed=1, injector=injector,
                              batch_size=20)
        assert report.n_injections == 50
        assert report.n_sdc + report.n_due + report.n_masked == 50


class TestCheckpointResume:
    def test_truncated_journal_resumes_bit_identical(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        full = run_grid(batch_size=20, checkpoint=path, **GRID)
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + 6  # header + 3 batches per cell
        # kill after the first two batches, then resume
        path.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_grid(batch_size=20, checkpoint=path, resume=True,
                           **GRID)
        assert [r.to_dict() for r in resumed] == \
            [r.to_dict() for r in full]

    @pytest.mark.multicore
    def test_parallel_resume_bit_identical(self, tmp_path):
        """The acceptance bar: kill -> resume with n_jobs=4 == serial."""
        path = tmp_path / "grid.jsonl"
        serial = run_grid(batch_size=20, **GRID)
        run_grid(batch_size=20, checkpoint=path, **GRID)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:4]) + "\n")
        resumed = run_grid(batch_size=20, checkpoint=path, resume=True,
                           n_jobs=4, **GRID)
        assert [r.to_dict() for r in resumed] == \
            [r.to_dict() for r in serial]

    def test_corrupt_trailing_line_warns_and_reruns(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        full = run_grid(batch_size=20, checkpoint=path, **GRID)
        text = path.read_text()
        path.write_text(text[:len(text) - 30])  # torn final write
        with pytest.warns(UserWarning, match="corrupt checkpoint line"):
            resumed = run_grid(batch_size=20, checkpoint=path,
                               resume=True, **GRID)
        assert [r.to_dict() for r in resumed] == \
            [r.to_dict() for r in full]

    def test_resume_rejects_different_grid(self, tmp_path):
        path = tmp_path / "grid.jsonl"
        run_grid(batch_size=20, checkpoint=path, **GRID)
        other = dict(GRID, seed=7)
        with pytest.raises(CampaignError):
            run_grid(batch_size=20, checkpoint=path, resume=True, **other)

    def test_resume_requires_path(self):
        with pytest.raises(CampaignError):
            run_grid(resume=True, **GRID)


class TestTmxmGrid:
    def test_runs_all_cells(self, injector):
        reports = run_tmxm_grid(tile_kinds=["Random"], n_faults=30,
                                seed=2, injector=injector)
        assert [(r.input_range, r.module) for r in reports] == \
            [("Random", "scheduler"), ("Random", "pipeline")]

    def test_checkpoint_roundtrip(self, tmp_path, injector):
        path = tmp_path / "tmxm.jsonl"
        kwargs = dict(tile_kinds=["Random"], n_faults=30, seed=2,
                      batch_size=10)
        full = run_tmxm_grid(checkpoint=path, injector=injector, **kwargs)
        resumed = run_tmxm_grid(checkpoint=path, resume=True,
                                injector=injector, **kwargs)
        assert [r.to_dict() for r in resumed] == \
            [r.to_dict() for r in full]

    def test_rejects_unknown_tile(self):
        with pytest.raises(CampaignError):
            run_tmxm_grid(tile_kinds=["Diagonal"], n_faults=10)


class TestWallClockGuard:
    def test_timeout_classifies_as_due(self, injector):
        bench = make_microbenchmark(Opcode.FADD, "M", seed=0)
        report = run_campaign(bench, "fp32", 5, seed=0, injector=injector,
                              timeout=1e-6)
        assert report.n_due == 5
        assert all("wall-clock guard" in (r.due_reason or "")
                   for r in report.general)
        assert all(r.outcome is Outcome.DUE for r in report.general)
