"""CNN tensor-operation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import make_rng
from repro.swfi.ops import SassOps
from repro.apps.cnn.tensor_ops import (
    conv2d,
    im2col,
    linear,
    maxpool2,
    relu,
    sigmoid,
    softmax,
    tiled_matmul,
)


class TestTiledMatmul:
    @given(st.integers(1, 20), st.integers(1, 20), st.integers(1, 20),
           st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_matches_numpy(self, m, k, n, seed):
        rng = make_rng(seed)
        a = rng.normal(0, 1, (m, k)).astype(np.float32)
        b = rng.normal(0, 1, (k, n)).astype(np.float32)
        out = tiled_matmul(SassOps(), a, b)
        assert out.shape == (m, n)
        assert np.allclose(out, a @ b, atol=1e-3)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tiled_matmul(SassOps(), np.zeros((2, 3)), np.zeros((4, 2)))

    def test_tile_hook_receives_padded_output(self):
        calls = []

        def hook(layer_id, matrix):
            calls.append((layer_id, matrix.shape))
            return matrix

        tiled_matmul(SassOps(), np.ones((3, 5), np.float32),
                     np.ones((5, 9), np.float32), layer_id=7,
                     tile_hook=hook)
        assert calls == [(7, (8, 16))]

    def test_tile_hook_corruption_propagates(self):
        def hook(layer_id, matrix):
            corrupted = matrix.copy()
            corrupted[0, 0] = 99.0
            return corrupted

        out = tiled_matmul(SassOps(), np.ones((2, 2), np.float32),
                           np.ones((2, 2), np.float32), tile_hook=hook)
        assert out[0, 0] == 99.0


class TestConv:
    def test_matches_direct_convolution(self):
        rng = make_rng(3)
        x = rng.normal(0, 1, (2, 6, 6)).astype(np.float32)
        w = rng.normal(0, 1, (4, 2, 3, 3)).astype(np.float32)
        b = rng.normal(0, 1, 4).astype(np.float32)
        out = conv2d(SassOps(), x, w, b, stride=1, pad=1)
        assert out.shape == (4, 6, 6)
        xp = np.pad(x, ((0, 0), (1, 1), (1, 1)))
        for f in range(4):
            for i in range(6):
                for j in range(6):
                    expected = (xp[:, i:i + 3, j:j + 3] * w[f]).sum() + b[f]
                    assert out[f, i, j] == pytest.approx(expected, abs=1e-3)

    def test_strided_output_shape(self):
        x = np.zeros((3, 8, 8), np.float32)
        w = np.zeros((5, 3, 3, 3), np.float32)
        out = conv2d(SassOps(), x, w, np.zeros(5, np.float32),
                     stride=2, pad=1)
        assert out.shape == (5, 4, 4)

    def test_im2col_patch_count(self):
        cols = im2col(np.zeros((2, 5, 5), np.float32), kernel=3)
        assert cols.shape == (2 * 9, 9)


class TestActivations:
    def test_relu(self):
        x = np.array([[-1.0, 2.0], [0.0, -3.0]], np.float32)
        out = relu(SassOps(), x)
        assert np.array_equal(out, np.maximum(x, 0.0))

    def test_maxpool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
        out = maxpool2(SassOps(), x)
        assert out.shape == (1, 2, 2)
        assert np.array_equal(out[0], [[5, 7], [13, 15]])

    def test_softmax_is_distribution(self):
        probs = softmax(SassOps(), np.array([1.0, 2.0, 3.0], np.float32))
        assert probs.sum() == pytest.approx(1.0, abs=1e-5)
        assert np.argmax(probs) == 2
        reference = np.exp([1.0, 2.0, 3.0]) / np.exp([1.0, 2.0, 3.0]).sum()
        assert np.allclose(probs, reference, atol=1e-5)

    def test_sigmoid(self):
        x = np.array([0.0, 2.0, -2.0], np.float32)
        out = sigmoid(SassOps(), x)
        assert np.allclose(out, 1 / (1 + np.exp(-x)), atol=1e-5)

    def test_linear(self):
        w = np.array([[1.0, 2.0], [3.0, 4.0]], np.float32)
        b = np.array([0.5, -0.5], np.float32)
        out = linear(SassOps(), np.array([1.0, 1.0], np.float32), w, b)
        assert np.allclose(out, [3.5, 6.5], atol=1e-5)


class TestInstrumentation:
    def test_matmul_ffma_count(self):
        ops = SassOps()
        tiled_matmul(ops, np.ones((8, 8), np.float32),
                     np.ones((8, 8), np.float32))
        from repro.gpu.isa import Opcode

        assert ops.counts[Opcode.FFMA] == 8 * 8 * 8
