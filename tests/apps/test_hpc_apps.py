"""HPC application correctness tests."""

import numpy as np
import pytest

from repro.apps import (
    GaussianElimination,
    Hotspot,
    LavaMD,
    LUDecomposition,
    MatrixMultiply,
    Quicksort,
)
from repro.swfi.ops import SassOps


class TestMatrixMultiply:
    def test_computes_product(self):
        app = MatrixMultiply(n=16, tile=8, seed=1)
        out = app.golden()
        assert np.allclose(out, app.a @ app.b, atol=1e-4)

    def test_tile_must_divide(self):
        with pytest.raises(ValueError):
            MatrixMultiply(n=10, tile=8)

    def test_deterministic(self):
        app = MatrixMultiply(n=16, tile=8, seed=2)
        assert np.array_equal(app.golden(), app.golden())


class TestLUD:
    def test_factorisation(self):
        app = LUDecomposition(n=24, seed=1)
        packed = app.golden()
        lower = np.tril(packed, -1) + np.eye(app.n, dtype=np.float32)
        upper = np.triu(packed)
        assert np.allclose(lower @ upper, app.a, atol=1e-2)


class TestQuicksort:
    def test_sorts(self):
        app = Quicksort(n=512, seed=1)
        assert np.array_equal(app.golden(), np.sort(app.data))

    def test_handles_duplicates(self):
        app = Quicksort(n=64, seed=2)
        app.data = (app.data % 5).astype(np.int32)
        assert np.array_equal(app.golden(), np.sort(app.data))


class TestLava:
    def test_matches_direct_computation(self):
        app = LavaMD(particles_per_box=8, seed=1)
        out = app.golden()
        home = app.home.astype(np.float64)
        neighbor = app.neighbor.astype(np.float64)
        for i in range(app.m):
            d = home[i, :3] - neighbor[:, :3]
            r2 = (d ** 2).sum(axis=1)
            u = np.exp(-float(app.alpha) * r2)
            vij = neighbor[:, 3] * u
            expected = (vij[:, None] * d).sum(axis=0)
            assert np.allclose(out[i, :3], expected, atol=1e-3)
            assert out[i, 3] == pytest.approx(vij.sum(), abs=1e-3)


class TestGaussian:
    def test_solves_system(self):
        app = GaussianElimination(n=24, seed=1)
        x = app.golden()
        assert np.allclose(app.a @ x, app.b, atol=1e-3)


class TestHotspot:
    def test_converges_toward_steady_state(self):
        app = Hotspot(n=16, iterations=4, seed=1)
        out = app.golden()
        assert out.shape == (16, 16)
        assert np.isfinite(out).all()
        # diffusion shrinks the temperature spread
        assert out.std() < app.temp.std() * 1.5

    def test_iteration_count_matters(self):
        short = Hotspot(n=16, iterations=2, seed=1).golden()
        long = Hotspot(n=16, iterations=6, seed=1).golden()
        assert not np.array_equal(short, long)


class TestDeterminism:
    @pytest.mark.parametrize("factory", [
        lambda: MatrixMultiply(n=16, tile=8),
        lambda: LUDecomposition(n=16),
        lambda: Quicksort(n=128),
        lambda: LavaMD(particles_per_box=8),
        lambda: GaussianElimination(n=16),
        lambda: Hotspot(n=16, iterations=2),
    ])
    def test_golden_runs_identical(self, factory):
        app = factory()
        assert np.array_equal(app.run(SassOps()), app.run(SassOps()))
