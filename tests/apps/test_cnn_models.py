"""LeNet-mini / YOLO-mini / dataset / metric tests."""

import numpy as np
import pytest

from repro.rng import make_rng
from repro.swfi.ops import SassOps
from repro.apps.cnn.datasets import (
    make_digit,
    make_digit_dataset,
    make_scene,
    make_scene_dataset,
)
from repro.apps.cnn.metrics import (
    Detection,
    iou,
    is_misclassification,
    is_misdetection,
    match_detections,
)
from repro.apps.cnn.train import train_softmax_head


class TestDatasets:
    def test_digit_shapes_and_range(self):
        image = make_digit(7, make_rng(0))
        assert image.shape == (1, 16, 16)
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_invalid_digit_rejected(self):
        with pytest.raises(ValueError):
            make_digit(10, make_rng(0))

    def test_dataset_deterministic(self):
        a_images, a_labels = make_digit_dataset(20, seed=3)
        b_images, b_labels = make_digit_dataset(20, seed=3)
        assert np.array_equal(a_images, b_images)
        assert np.array_equal(a_labels, b_labels)

    def test_all_classes_present(self):
        _, labels = make_digit_dataset(200, seed=1)
        assert set(labels.tolist()) == set(range(10))

    def test_scene_boxes_inside_image(self):
        image, boxes = make_scene(make_rng(5))
        assert image.shape == (3, 32, 32)
        for cls, cx, cy, w, h in boxes:
            assert 0 <= cls < 3
            assert 0 <= cx <= 32 and 0 <= cy <= 32

    def test_scene_dataset(self):
        scenes = make_scene_dataset(4, seed=2)
        assert len(scenes) == 4


class TestTraining:
    def test_separable_problem_learned(self):
        rng = make_rng(0)
        features = rng.normal(0, 1, (200, 8))
        labels = (features[:, 0] > 0).astype(np.int64)
        result = train_softmax_head(features, labels, 2, epochs=300)
        assert result.train_accuracy > 0.95
        assert result.final_loss < 0.5

    def test_weights_dtype(self):
        rng = make_rng(1)
        result = train_softmax_head(rng.normal(0, 1, (50, 4)),
                                    rng.integers(0, 3, 50), 3, epochs=10)
        assert result.weights.dtype == np.float32
        assert result.weights.shape == (3, 4)


class TestLeNet:
    def test_trained_to_high_accuracy(self, lenet_app):
        assert lenet_app.net.train_accuracy > 0.95

    def test_probabilities(self, lenet_app):
        probs = lenet_app.golden()
        assert probs.shape == (lenet_app.batch, 10)
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-3)

    def test_golden_predictions_match_labels(self, lenet_app):
        probs = lenet_app.golden()
        predictions = lenet_app.net.classify(probs)
        assert np.array_equal(predictions, lenet_app.labels)

    def test_tile_hook_reaches_every_layer(self, lenet_app):
        seen = set()

        def hook(layer_id, matrix):
            seen.add(layer_id)
            return matrix

        lenet_app.run(SassOps(), tile_hook=hook)
        assert seen == set(range(lenet_app.n_mxm_layers))


class TestYolo:
    def test_detection_output_shape(self, yolo_app):
        packed = yolo_app.golden()
        assert packed.shape == (yolo_app.batch, yolo_app.net.TOP_K, 6)

    def test_deterministic(self, yolo_app):
        assert np.array_equal(yolo_app.golden(),
                              yolo_app.run(SassOps()))

    def test_tile_hook_reaches_every_layer(self, yolo_app):
        seen = set()

        def hook(layer_id, matrix):
            seen.add(layer_id)
            return matrix

        yolo_app.run(SassOps(), tile_hook=hook)
        assert seen == set(range(yolo_app.n_mxm_layers))


class TestMetrics:
    def _box(self, cls=0, cx=10.0, cy=10.0, w=4.0, h=4.0, score=0.9):
        return Detection(cls, score, cx, cy, w, h)

    def test_iou_identity(self):
        assert iou(self._box(), self._box()) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        assert iou(self._box(cx=0, cy=0), self._box(cx=20, cy=20)) == 0.0

    def test_iou_partial(self):
        a = self._box(cx=10, cy=10)
        b = self._box(cx=12, cy=10)
        assert 0.0 < iou(a, b) < 1.0

    def test_matching_requires_class(self):
        golden = [self._box(cls=0)]
        observed = [self._box(cls=1)]
        assert match_detections(golden, observed) == 0
        assert is_misdetection(golden, observed)

    def test_small_shift_tolerated(self):
        golden = [self._box()]
        observed = [self._box(cx=10.5)]
        assert not is_misdetection(golden, observed)

    def test_count_change_is_misdetection(self):
        assert is_misdetection([self._box()], [])

    def test_misclassification(self):
        golden = np.array([[0.9, 0.1], [0.2, 0.8]])
        same = np.array([[0.8, 0.2], [0.3, 0.7]])
        flipped = np.array([[0.4, 0.6], [0.2, 0.8]])
        assert not is_misclassification(golden, same)
        assert is_misclassification(golden, flipped)
