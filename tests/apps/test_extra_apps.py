"""Pathfinder / Needleman-Wunsch / BFS tests."""

import numpy as np
import pytest

from repro.apps import (
    BreadthFirstSearch,
    NeedlemanWunsch,
    Pathfinder,
)
from repro.rng import make_rng
from repro.rtl.classify import Outcome
from repro.swfi import SingleBitFlip, SoftwareInjector, profile_application
from repro.swfi.ops import SassOps


class TestPathfinder:
    def test_matches_reference(self):
        app = Pathfinder(cols=64, rows=12, seed=3)
        assert np.array_equal(app.golden(), app.reference())

    def test_costs_monotone_nonnegative(self):
        app = Pathfinder(cols=32, rows=8, seed=4)
        assert (app.golden() >= 0).all()

    def test_profile_is_int_control(self):
        profile = profile_application(Pathfinder(cols=64, rows=8))
        fractions = profile.group_fractions()
        assert fractions["INT32"] + fractions["Control"] > 0.9


class TestNeedlemanWunsch:
    def test_matches_reference(self):
        app = NeedlemanWunsch(length=24, seed=5)
        assert np.array_equal(app.golden(), app.reference())

    def test_identical_sequences_score_perfectly(self):
        app = NeedlemanWunsch(length=16, seed=6)
        app.seq_b = app.seq_a.copy()
        score = app.golden()
        assert score[-1, -1] == 3 * 16  # all matches

    def test_deterministic(self):
        app = NeedlemanWunsch(length=24, seed=7)
        assert np.array_equal(app.run(SassOps()), app.run(SassOps()))


class TestBfs:
    def test_matches_reference(self):
        app = BreadthFirstSearch(n_vertices=200, seed=8)
        assert np.array_equal(app.golden(), app.reference())

    def test_all_vertices_reached(self):
        app = BreadthFirstSearch(n_vertices=100, seed=9)
        depth = app.golden()
        assert (depth >= 0).all()
        assert depth[0] == 0

    def test_depths_respect_edges(self):
        app = BreadthFirstSearch(n_vertices=100, seed=10)
        depth = app.golden()
        for vertex in range(app.n):
            start, end = app.row_offsets[vertex], app.row_offsets[vertex + 1]
            for neighbor in app.column_indices[start:end]:
                assert abs(int(depth[vertex]) - int(depth[neighbor])) <= 1


class TestInjection:
    @pytest.mark.parametrize("factory", [
        lambda: Pathfinder(cols=48, rows=8),
        lambda: NeedlemanWunsch(length=24),
        lambda: BreadthFirstSearch(n_vertices=100),
    ])
    def test_bitflip_campaign_runs(self, factory):
        app = factory()
        injector = SoftwareInjector(app)
        rng = make_rng(0)
        outcomes = [injector.inject_one(SingleBitFlip(), rng).outcome
                    for _ in range(30)]
        assert all(o in (Outcome.MASKED, Outcome.SDC, Outcome.DUE)
                   for o in outcomes)
        assert Outcome.SDC in outcomes
