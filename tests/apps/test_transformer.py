"""Transformer-block workload: numerics, t-MxM interface, precision."""

import numpy as np
import pytest

from repro.apps import make_application
from repro.apps.transformer import TransformerBlockApp
from repro.rng import make_rng
from repro.swfi.injector import SoftwareInjector
from repro.swfi.models import SingleBitFlip
from repro.swfi.ops import SassOps

PRECISIONS = ("fp32", "fp16", "bf16")


class TestForwardPass:
    def test_output_is_probability_batch(self):
        app = TransformerBlockApp(seed=3)
        out = app.run(SassOps())
        assert out.shape == (app.batch, app.N_CLASSES)
        assert out.dtype == np.float32
        # rows are softmax outputs at print precision
        assert np.all(out >= 0.0)
        assert np.allclose(out.sum(axis=1), 1.0, atol=5e-3)

    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_golden_is_deterministic(self, precision):
        a = TransformerBlockApp(seed=3, precision=precision)
        b = TransformerBlockApp(seed=3, precision=precision)
        assert np.array_equal(a.golden(), b.golden())

    def test_precisions_produce_distinct_arithmetic(self):
        runs = {p: TransformerBlockApp(seed=3, precision=p).golden()
                for p in PRECISIONS}
        assert not np.array_equal(runs["fp32"], runs["fp16"])
        assert not np.array_equal(runs["fp32"], runs["bf16"])

    def test_run_must_use_matching_ops_precision(self):
        app = TransformerBlockApp(seed=3, precision="fp16")
        golden = app.golden()
        mismatched = app.run(SassOps())  # fp32 arithmetic
        assert not np.array_equal(golden, mismatched)


class TestTmxmInterface:
    def test_layer_ids_cover_every_gemm(self):
        app = TransformerBlockApp(seed=3)
        seen = {}

        def hook(layer_id, matrix):
            seen[layer_id] = seen.get(layer_id, 0) + 1
            return matrix

        app.run(SassOps(), tile_hook=hook)
        assert sorted(seen) == list(range(app.n_mxm_layers))
        assert all(count == app.mxm_calls_per_layer
                   for count in seen.values())

    def test_critical_criterion_is_top1_flip(self):
        app = TransformerBlockApp(seed=3)
        golden = app.golden()
        nudged = golden.copy()
        nudged[0, 0] += 1e-4  # numeric SDC, same argmax
        assert not app.is_critical(golden, nudged)
        flipped = golden.copy()
        flipped[0] = flipped[0, ::-1]
        assert app.is_critical(golden, flipped)


class TestPrecisionDispatch:
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_injector_adopts_app_precision(self, precision):
        app = TransformerBlockApp(seed=3, precision=precision)
        injector = SoftwareInjector(app)
        assert injector.precision == precision
        result = injector.inject_one(SingleBitFlip(), make_rng(5))
        assert result.outcome.name in ("MASKED", "SDC", "DUE")

    def test_factory_forwards_precision(self):
        app = make_application("Transformer", seed=1, precision="bf16")
        assert app.precision == "bf16"
        assert app.name == "Transformer-bf16"

    def test_fp32_only_apps_reject_reduced_precision(self):
        with pytest.raises(ValueError, match="fp32 only"):
            make_application("MxM", seed=1, precision="fp16")

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError, match="precision"):
            TransformerBlockApp(seed=1, precision="fp8")
