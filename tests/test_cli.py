"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        actions = {a.dest: a for a in parser._actions}
        choices = actions["command"].choices
        assert set(choices) >= {"inventory", "campaign", "tmxm",
                                "profile", "pvf", "build-db", "pipeline",
                                "stats", "schemas"}

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_rejects_unknown_opcode(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--opcode", "FROB"])


class TestCommands:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "pipeline" in out

    def test_schemas(self, capsys):
        assert main(["schemas"]) == 0
        out = capsys.readouterr().out
        for kind in ("rtl-report", "pvf-report", "syndrome-db",
                     "campaign-journal", "campaign-metrics",
                     "job-record"):
            assert kind in out

    def test_schemas_json(self, capsys):
        import json

        assert main(["schemas", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        entries = {row["kind"]: row for row in payload}
        assert entries["rtl-report"]["version"] == 1
        assert entries["rtl-report"]["fingerprint"]

    def test_campaign(self, capsys):
        assert main(["campaign", "--opcode", "IADD", "--module", "int",
                     "--faults", "60", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "AVF" in out and "masked" in out

    def test_campaign_with_attribution(self, capsys):
        assert main(["campaign", "--opcode", "FADD", "--module",
                     "pipeline", "--faults", "60", "--attribution"]) == 0
        out = capsys.readouterr().out
        assert "Fault attribution" in out

    def test_tmxm(self, capsys):
        assert main(["tmxm", "--tile", "Zero", "--module", "pipeline",
                     "--faults", "40"]) == 0
        out = capsys.readouterr().out
        assert "t-MxM" in out and "spatial patterns" in out

    def test_profile(self, capsys):
        assert main(["profile", "--app", "Quicksort"]) == 0
        out = capsys.readouterr().out
        assert "Quicksort" in out and "Control" in out

    def test_pvf_with_checkpoint_and_resume(self, capsys, tmp_path):
        journal = tmp_path / "mxm.jsonl"
        argv = ["pvf", "--app", "MxM", "--model", "bitflip",
                "--injections", "60", "--batch-size", "20",
                "--checkpoint", str(journal)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "PVF" in first and journal.exists()
        # resume replays the journal without re-running any batch
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_pvf_resume_requires_checkpoint(self):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            main(["pvf", "--app", "MxM", "--model", "bitflip",
                  "--injections", "20", "--resume"])

    def test_quiet_silences_progress(self, capsys):
        assert main(["campaign", "--opcode", "IADD", "--module", "int",
                     "--faults", "40", "--quiet"]) == 0
        captured = capsys.readouterr()
        assert "AVF" in captured.out
        assert captured.err == ""

    def test_progress_goes_to_stderr(self, capsys):
        assert main(["campaign", "--opcode", "IADD", "--module", "int",
                     "--faults", "40", "--batch-size", "20"]) == 0
        captured = capsys.readouterr()
        assert "AVF" in captured.out
        assert "[2/2]" in captured.err  # two fault batches reported

    def test_pipeline_end_to_end_and_rerun(self, capsys, tmp_path):
        workdir = tmp_path / "pipe"
        argv = ["pipeline", "--workdir", str(workdir), "--seed", "7",
                "--opcodes", "FADD", "IADD", "--grid-faults", "25",
                "--tmxm-faults", "15", "--apps", "MxM", "--model",
                "bitflip", "--injections", "30", "--quiet"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "syndrome database" in first and "PVF" in first
        assert (workdir / "pipeline_summary.json").exists()
        # second invocation resumes from the finished artefacts
        assert main(argv) == 0
        assert capsys.readouterr().out == first


class TestZeroInjections:
    def test_campaign_faults_zero(self, capsys):
        assert main(["campaign", "--opcode", "FADD", "--module", "fp32",
                     "--faults", "0", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "masked 0" in out and "margin n/a" in out

    def test_pvf_injections_zero(self, capsys):
        assert main(["pvf", "--app", "MxM", "--model", "bitflip",
                     "--injections", "0", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "PVF 0.000" in out


class TestStats:
    def test_stats_on_checkpointed_pvf_journal(self, capsys, tmp_path):
        journal = tmp_path / "pvf.jsonl"
        assert main(["pvf", "--app", "MxM", "--model", "bitflip",
                     "--injections", "30", "--checkpoint", str(journal),
                     "--quiet"]) == 0
        capsys.readouterr()
        # the campaign wrote pvf.metrics.json next to its journal
        assert main(["stats", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "units/s" in out and "pvf/MxM" in out

    def test_stats_on_workdir_and_no_cells(self, capsys, tmp_path):
        from repro.campaign import CampaignMetrics

        metrics = CampaignMetrics("rtl-grid")
        metrics.record_unit(0, "FADD/M/fp32 [0]", size=5)
        metrics.record_unit(1, "FADD/M/fp32 [1]", size=5)
        metrics.save(tmp_path / "rtl_grid.metrics.json")
        assert main(["stats", str(tmp_path)]) == 0
        assert "per-cell" in capsys.readouterr().out
        assert main(["stats", str(tmp_path), "--no-cells"]) == 0
        assert "per-cell" not in capsys.readouterr().out

    def test_stats_missing_target_exits_2(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path / "nowhere")]) == 2
        err = capsys.readouterr().err
        assert "repro stats:" in err and "nowhere" in err
        assert "hint:" in err

    def test_stats_empty_workdir_exits_2(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path)]) == 2
        assert "repro stats:" in capsys.readouterr().err

    def test_stats_json_emits_the_raw_payloads(self, capsys, tmp_path):
        import json

        from repro.campaign import CampaignMetrics

        metrics = CampaignMetrics("rtl-grid")
        metrics.record_unit(0, "FADD/M/fp32 [0]", size=5)
        metrics.save(tmp_path / "rtl_grid.metrics.json")
        assert main(["stats", str(tmp_path), "--json"]) == 0
        payloads = json.loads(capsys.readouterr().out)
        assert [p["stage"] for p in payloads] == ["rtl-grid"]
        assert payloads[0]["units"][0]["index"] == 0


class TestAdaptivePVF:
    def test_target_ci_stops_early_and_reports_the_decision(
            self, capsys):
        assert main(["pvf", "--app", "MxM", "--model", "bitflip",
                     "--injections", "100", "--target-ci", "0.9",
                     "--min-per-cell", "30", "--quiet"]) == 0
        out = capsys.readouterr().out
        # default batch size 50: the warm-up horizon is one whole unit
        assert "adaptive: 50/100 injections in 1 round(s)" in out
        assert "converged" in out


class TestPatterns:
    def _rtl_report_file(self, tmp_path):
        import json

        from repro.artifacts import dump_artifact
        from repro.gpu import Opcode
        from repro.rtl import make_microbenchmark, run_campaign

        bench = make_microbenchmark(Opcode.FADD, "M", seed=3)
        report = run_campaign(bench, "fp32", 60, seed=3, batch_size=20)
        path = tmp_path / "report.json"
        path.write_text(json.dumps(dump_artifact("rtl-report", report)))
        return path, report

    def test_patterns_mines_an_rtl_report(self, capsys, tmp_path):
        import json

        from repro.analytics import mine_patterns
        from repro.artifacts import load_artifact

        path, report = self._rtl_report_file(tmp_path)
        assert main(["patterns", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "pattern-report"
        assert load_artifact("pattern-report", payload) == \
            mine_patterns(report)

    def test_patterns_output_flag_writes_a_file(self, capsys, tmp_path):
        import json

        path, _ = self._rtl_report_file(tmp_path)
        out_path = tmp_path / "patterns.json"
        assert main(["patterns", str(path),
                     "--output", str(out_path)]) == 0
        assert "saved" in capsys.readouterr().out
        assert json.loads(
            out_path.read_text())["kind"] == "pattern-report"

    def test_patterns_rejects_a_non_report(self, capsys, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{\"hello\": 1}")
        assert main(["patterns", str(path)]) == 2
        assert "not a pvf/rtl campaign report" in \
            capsys.readouterr().err

    def test_patterns_rejects_unreadable_input(self, capsys, tmp_path):
        assert main(["patterns", str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()
