"""Cross-cutting tests: seeds, error hierarchy, datafiles, divergence."""

import numpy as np
import pytest

from repro import errors
from repro.rng import make_rng, namespace_seed, spawn_seeds


class TestRng:
    def test_make_rng_deterministic(self):
        assert make_rng(7).integers(1 << 30) == make_rng(7).integers(1 << 30)

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(3, 5) == spawn_seeds(3, 5)

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(3, 64)
        assert len(set(seeds)) == 64

    def test_spawned_streams_uncorrelated(self):
        a, b = spawn_seeds(0, 2)
        xs = make_rng(a).random(1000)
        ys = make_rng(b).random(1000)
        assert abs(np.corrcoef(xs, ys)[0, 1]) < 0.1


class TestNamespaceSeed:
    def test_deterministic(self):
        assert namespace_seed(11, "fault-model/stuck-at") == \
            namespace_seed(11, "fault-model/stuck-at")

    def test_namespaces_distinct(self):
        names = ("fault-model/stuck-at", "fault-model/burst", "other")
        seeds = {namespace_seed(11, name) for name in names}
        assert len(seeds) == 3

    def test_base_seed_still_matters(self):
        assert namespace_seed(0, "ns") != namespace_seed(1, "ns")

    def test_derived_stream_leaves_base_stream_alone(self):
        # the fault-model namespaces never touch the base seed's own
        # stream: whatever is drawn from a namespaced generator, the
        # plain stream for the same seed is unchanged
        base_before = make_rng(42).random(100).tolist()
        make_rng(namespace_seed(42, "fault-model/stuck-at")).random(1000)
        base_after = make_rng(42).random(100).tolist()
        assert base_before == base_after

    def test_known_values_pinned(self):
        # regression pin: changing these shifts every stuck-at/burst
        # fault list ever generated (see rtl/faultlist.py)
        assert namespace_seed(0, "fault-model/stuck-at") == 3367084478
        assert namespace_seed(2021, "fault-model/stuck-at") == 1985640451
        assert namespace_seed(2021, "fault-model/burst") == 4277551645


class TestErrorHierarchy:
    def test_gpu_errors_are_hardware_errors(self):
        for exc in (errors.GpuHangError, errors.InvalidProgramCounterError,
                    errors.IllegalInstructionError, errors.MemoryFaultError,
                    errors.RegisterFaultError):
            assert issubclass(exc, errors.GpuHardwareError)
            assert issubclass(exc, errors.ReproError)

    def test_fault_decayed_is_not_a_hardware_error(self):
        # a decayed transient is a masked run, not a GPU failure
        assert not issubclass(errors.FaultDecayedError,
                              errors.GpuHardwareError)
        assert issubclass(errors.FaultDecayedError, errors.ReproError)

    def test_campaign_and_db_errors(self):
        assert issubclass(errors.CampaignError, errors.ReproError)
        assert issubclass(errors.SyndromeDatabaseError, errors.ReproError)


class TestDatafiles:
    def test_missing_without_build_raises(self, tmp_path):
        from repro.datafiles import load_database

        with pytest.raises(FileNotFoundError):
            load_database(tmp_path / "missing.json", allow_build=False)

    def test_shipped_database_loads(self):
        from repro.datafiles import default_database_path, load_database

        if not default_database_path().exists():
            pytest.skip("shipped database not built in this checkout")
        database = load_database(allow_build=False)
        opcodes = {entry.key.opcode for entry in database.entries()}
        # the shipped grid covers all 12 characterised opcodes
        assert len(opcodes) == 12
        assert len(database.tmxm_entries()) == 6


class TestDivergenceSemantics:
    def test_mixed_branch_takes_majority_and_drops_minority(self):
        """The documented SIMT-divergence simplification, pinned down."""
        from repro.gpu import Opcode, StreamingMultiprocessor
        from repro.gpu.isa import CompareOp, Predicate
        from repro.gpu.program import ProgramBuilder

        b = ProgramBuilder("diverge")
        # threads 0..2 take the branch, 3..7 fall through: minority taken
        b.iset(Predicate(0), 0, b.imm(3), CompareOp.LT)
        b.mov(1, b.imm(111))
        b.bra("taken", predicate=Predicate(0))
        b.mov(1, b.imm(222))
        b.label("taken")
        b.gst(0, 1, offset=0x300)
        b.exit()
        sm = StreamingMultiprocessor()
        result = sm.launch(b.build(), 8)
        words = result.memory.read_words(0x300, 8)
        # minority threads (0..2) were dropped: their slots stay empty;
        # the majority fell through and stored 222
        assert words[:3] == [0, 0, 0]
        assert words[3:] == [222] * 5
