"""Adaptive runners: determinism, the prefix property, and resume.

The contract under test is ISSUE 9's acceptance bar: an adaptive
campaign executes a **prefix of the fixed seed-indexed unit plan**, so
its merged report is bit-identical to a fixed-size campaign truncated
at the same unit horizon — across process counts, across the
vectorized/scalar RTL engines, and across a kill/resume cycle.
"""

import pytest

from repro.adaptive import (
    AdaptiveConfig,
    run_adaptive_campaign,
    run_adaptive_grid,
    run_adaptive_pvf_campaign,
)
from repro.apps import make_application
from repro.gpu import Opcode
from repro.rtl import make_microbenchmark, run_campaign
from repro.swfi.campaign import run_pvf_campaign
from repro.swfi.models import SingleBitFlip

#: converges at the warm-up horizon: any interval is narrower than 0.9
LOOSE = AdaptiveConfig(target_ci=0.9, min_per_cell=30)


class TestPVF:
    def test_early_stop_is_prefix_of_fixed_plan(self):
        outcome = run_adaptive_pvf_campaign(
            make_application("MxM", seed=5), SingleBitFlip(), 100,
            LOOSE, seed=5, batch_size=10)
        executed = outcome.report.n_injections
        assert executed == 30  # warm-up only: 3 of the 10 planned units
        assert outcome.converged and outcome.rounds == 1
        fixed = run_pvf_campaign(
            make_application("MxM", seed=5), SingleBitFlip(), executed,
            seed=5, batch_size=10)
        assert outcome.report.to_dict() == fixed.to_dict()

    def test_summary_reflects_the_stop_decision(self):
        outcome = run_adaptive_pvf_campaign(
            make_application("MxM", seed=5), SingleBitFlip(), 100,
            LOOSE, seed=5, batch_size=10)
        (entry,) = outcome.summary
        assert entry["cell"] == "MxM/single-bit-flip"
        assert entry["trials"] == 30
        assert entry["units"] == 3 and entry["plan_units"] == 10
        assert entry["converged"] and not entry["exhausted"]
        assert entry["ci_width"] <= LOOSE.target_ci

    @pytest.mark.multicore
    def test_parallel_run_is_bit_identical(self):
        kwargs = dict(seed=7, batch_size=5)
        serial = run_adaptive_pvf_campaign(
            make_application("MxM", seed=7), SingleBitFlip(), 60,
            LOOSE, n_jobs=1, **kwargs)
        parallel = run_adaptive_pvf_campaign(
            make_application("MxM", seed=7), SingleBitFlip(), 60,
            LOOSE, n_jobs=2, **kwargs)
        assert serial.report.to_dict() == parallel.report.to_dict()
        assert serial.summary == parallel.summary
        assert serial.rounds == parallel.rounds

    def test_resume_after_kill_reaches_same_stop_decision(self, tmp_path):
        config = AdaptiveConfig(target_ci=0.1, min_per_cell=20)
        kwargs = dict(seed=9, batch_size=5)
        journal = tmp_path / "full.jsonl"
        full = run_adaptive_pvf_campaign(
            make_application("MxM", seed=9), SingleBitFlip(), 200,
            config, checkpoint=journal, **kwargs)
        assert full.rounds >= 2  # the warm-up alone must not satisfy 0.1

        # simulate a SIGKILL mid-campaign: keep the journal header and
        # the first two completed units, drop everything after
        lines = journal.read_text().splitlines()
        assert len(lines) > 3
        killed = tmp_path / "killed.jsonl"
        killed.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_adaptive_pvf_campaign(
            make_application("MxM", seed=9), SingleBitFlip(), 200,
            config, checkpoint=killed, resume=True, **kwargs)

        assert resumed.report.to_dict() == full.report.to_dict()
        assert resumed.summary == full.summary
        assert resumed.rounds == full.rounds

    def test_resume_requires_checkpoint(self):
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            run_adaptive_pvf_campaign(
                make_application("MxM", seed=1), SingleBitFlip(), 10,
                LOOSE, resume=True)


class TestRTL:
    def test_early_stop_is_prefix_of_fixed_plan(self):
        bench = make_microbenchmark(Opcode.FADD, "M", seed=3)
        outcome = run_adaptive_campaign(bench, "fp32", 100, LOOSE,
                                        seed=3, batch_size=10)
        executed = outcome.reports[0].n_injections
        assert executed == 30
        fixed = run_campaign(bench, "fp32", executed, seed=3,
                             batch_size=10)
        assert outcome.reports[0].to_dict() == fixed.to_dict()

    def test_vectorized_and_scalar_engines_agree(self):
        bench = make_microbenchmark(Opcode.FMUL, "S", seed=7)
        kwargs = dict(seed=7, batch_size=10)
        scalar = run_adaptive_campaign(bench, "fp32", 60, LOOSE,
                                       vectorize=False, **kwargs)
        vectorized = run_adaptive_campaign(bench, "fp32", 60, LOOSE,
                                           vectorize="auto", **kwargs)
        assert scalar.reports[0].to_dict() == \
            vectorized.reports[0].to_dict()
        assert scalar.summary == vectorized.summary
        assert scalar.rounds == vectorized.rounds

    def test_resume_after_kill_reaches_same_stop_decision(self, tmp_path):
        bench = make_microbenchmark(Opcode.FADD, "S", seed=11)
        config = AdaptiveConfig(target_ci=0.9, min_per_cell=30)
        journal = tmp_path / "full.jsonl"
        full = run_adaptive_campaign(bench, "fp32", 100, config,
                                     seed=11, batch_size=10,
                                     checkpoint=journal)
        lines = journal.read_text().splitlines()
        killed = tmp_path / "killed.jsonl"
        killed.write_text("\n".join(lines[:2]) + "\n")  # header + 1 unit
        resumed = run_adaptive_campaign(bench, "fp32", 100, config,
                                        seed=11, batch_size=10,
                                        checkpoint=killed, resume=True)
        assert resumed.reports[0].to_dict() == full.reports[0].to_dict()
        assert resumed.summary == full.summary
        assert resumed.rounds == full.rounds


class TestGrid:
    def test_per_cell_early_stop_spends_less_than_the_fixed_plan(self):
        config = AdaptiveConfig(target_ci=0.5, min_per_cell=20)
        outcome = run_adaptive_grid(
            opcodes=[Opcode.FADD], input_ranges=("S", "M"),
            modules=["fp32"], n_faults=60, config=config, seed=1,
            batch_size=10)
        assert len(outcome.reports) == 2
        assert outcome.converged
        assert outcome.n_injections < 2 * 60  # strictly under the plan
        for entry in outcome.summary:
            assert entry["trials"] >= config.min_per_cell
            assert entry["ci_width"] <= config.target_ci
