"""Adaptive campaign control: sequential sampling, early stopping."""
