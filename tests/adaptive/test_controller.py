"""The sequential-sampling controller's pure decision core.

Everything here runs on synthetic unit plans and hand-fed tallies — no
fault injection.  The invariants under test are the ones the adaptive
runners and the service's moving-horizon shard planner both rely on:
decisions are pure functions of the observed tallies, horizons only
ever extend a prefix of the fixed plan, and a replayed journal
reconstructs the same round sequence.
"""

import types

import pytest

from repro.adaptive import (
    STRATEGIES,
    AdaptiveConfig,
    AdaptiveController,
    initial_horizon,
    next_horizon,
    required_trials,
)
from repro.analysis.stats import wilson_interval
from repro.campaign.engine import WorkUnit
from repro.errors import CampaignError


def _units(sizes, base=0):
    return [WorkUnit(index=base + i, size=size, seed=1000 + base + i)
            for i, size in enumerate(sizes)]


def _report(trials, sdc):
    return types.SimpleNamespace(n_injections=trials, n_sdc=sdc)


class TestConfig:
    def test_defaults_are_valid(self):
        config = AdaptiveConfig()
        assert config.target_ci == 0.05
        assert config.strategy in STRATEGIES

    @pytest.mark.parametrize("kwargs", [
        {"target_ci": 0.0},
        {"target_ci": 1.0},
        {"target_ci": -0.1},
        {"confidence": 0.0},
        {"confidence": 1.0},
        {"min_per_cell": 0},
        {"budget": -1},
        {"strategy": "greedy"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(CampaignError):
            AdaptiveConfig(**kwargs)


class TestRequiredTrials:
    def test_floor_is_min_per_cell(self):
        config = AdaptiveConfig(target_ci=0.5, min_per_cell=100)
        # a loose target needs few trials; the warm-up floor wins
        assert required_trials(0, 400, config) == 100

    def test_half_proportion_needs_most_trials(self):
        config = AdaptiveConfig(target_ci=0.05)
        worst = required_trials(50, 100, config)   # smoothed p = 0.5
        rare = required_trials(0, 100, config)     # smoothed p ~ 0.01
        assert rare < worst
        # w = 2 z sqrt(p(1-p)/n) at p=0.5, z=1.96 inverts to ~1537
        assert 1500 < worst < 1600


class TestHorizons:
    config = AdaptiveConfig(target_ci=0.05, min_per_cell=100)
    sizes = [50] * 40

    def test_initial_horizon_covers_warm_up(self):
        assert initial_horizon(self.sizes, self.config) == 2
        assert initial_horizon([30] * 10, self.config) == 4  # 120 >= 100
        assert initial_horizon([], self.config) == 0

    def test_no_tallies_yields_warm_up(self):
        assert next_horizon(0, 0, 0, self.sizes, self.config) == 2

    def test_lagging_tallies_freeze_the_horizon(self):
        # 2 units (100 injections) planned but only 50 observed: units
        # are still in flight, so no decision is taken
        assert next_horizon(50, 10, 2, self.sizes, self.config) == 2

    def test_exhausted_plan_stops(self):
        n = sum(self.sizes)
        assert next_horizon(n, n // 2, 40, self.sizes, self.config) == 40

    def test_converged_cell_stops(self):
        config = AdaptiveConfig(target_ci=0.1, min_per_cell=100)
        low, high = wilson_interval(500, 1000, config.confidence)
        assert high - low <= config.target_ci  # premise of the test
        assert next_horizon(1000, 500, 20, self.sizes, config) == 20

    def test_unconverged_cell_extends_by_its_deficit(self):
        # p = 0.5 at n = 100 needs ~1537 trials: deficit 1437, i.e.
        # 29 more units of 50 on top of the current 2
        assert next_horizon(100, 50, 2, self.sizes, self.config) == 31

    def test_horizon_sequence_is_monotonic(self):
        horizon, trials = 0, 0
        seen = []
        while True:
            extended = next_horizon(trials, trials // 2, horizon,
                                    self.sizes, self.config)
            if extended == horizon and trials >= sum(
                    self.sizes[:horizon]):
                break
            assert extended >= horizon
            horizon = extended
            trials = sum(self.sizes[:horizon])
            seen.append(horizon)
        assert seen == sorted(seen)
        assert horizon <= len(self.sizes)


class TestController:
    def test_duplicate_cell_rejected(self):
        controller = AdaptiveController()
        controller.add_cell("a", _units([10] * 3))
        with pytest.raises(CampaignError):
            controller.add_cell("a", _units([10] * 3, base=3))

    def test_overlapping_unit_index_rejected(self):
        controller = AdaptiveController()
        controller.add_cell("a", _units([10] * 3))
        with pytest.raises(CampaignError):
            controller.add_cell("b", _units([10] * 3))  # same indices

    def test_double_observation_rejected(self):
        controller = AdaptiveController(
            AdaptiveConfig(target_ci=0.5, min_per_cell=10))
        units = _units([10] * 3)
        controller.add_cell("a", units)
        controller.observe(units[0], _report(10, 2))
        with pytest.raises(CampaignError):
            controller.observe(units[0], _report(10, 2))

    def test_warm_up_round_covers_min_per_cell(self):
        config = AdaptiveConfig(target_ci=0.05, min_per_cell=30)
        controller = AdaptiveController(config)
        controller.add_cell("a", _units([10] * 20))
        controller.add_cell("b", _units([10] * 20, base=20))
        first = controller.next_round()
        assert [u.index for u in first] == [0, 1, 2, 20, 21, 22]
        assert controller.rounds == 1
        assert controller.planned_injections == 60

    def test_converged_campaign_returns_empty_round(self):
        config = AdaptiveConfig(target_ci=0.9, min_per_cell=10)
        controller = AdaptiveController(config)
        units = _units([10] * 5)
        controller.add_cell("a", units)
        first = controller.next_round()
        for unit in first:
            controller.observe(unit, _report(10, 5))
        assert controller.converged("a")
        assert controller.next_round() == []
        assert controller.rounds == 1

    def test_journal_replay_fast_forwards_planning(self):
        # a resumed controller observes units it never planned this
        # incarnation; the cursor follows so re-planning stays a prefix
        config = AdaptiveConfig(target_ci=0.9, min_per_cell=10)
        controller = AdaptiveController(config)
        units = _units([10] * 5)
        controller.add_cell("a", units)
        controller.observe(units[0], _report(10, 5))
        cell = controller._cells["a"]
        assert cell.planned == cell.observed == 1

    def test_budget_caps_the_warm_up(self):
        config = AdaptiveConfig(target_ci=0.05, min_per_cell=30,
                                budget=25)
        controller = AdaptiveController(config)
        controller.add_cell("a", _units([10] * 20))
        first = controller.next_round()
        assert sum(u.size for u in first) == 30  # whole units only
        for unit in first:
            controller.observe(unit, _report(10, 5))
        assert controller.next_round() == []  # budget spent

    def _pressured(self, strategy):
        # two unconverged cells fighting over a too-small budget: "a"
        # sits at p=0.5 (max variance), "b" has seen zero SDCs
        config = AdaptiveConfig(target_ci=0.05, min_per_cell=40,
                                budget=180, strategy=strategy)
        controller = AdaptiveController(config)
        a = _units([10] * 100)
        b = _units([10] * 100, base=100)
        controller.add_cell("a", a)
        controller.add_cell("b", b)
        for unit in controller.next_round():
            cell = "a" if unit.index < 100 else "b"
            controller.observe(
                unit, _report(10, 5 if cell == "a" else 0))
        round_units = controller.next_round()
        taken = {"a": 0, "b": 0}
        for unit in round_units:
            taken["a" if unit.index < 100 else "b"] += 1
        return taken

    def test_neyman_weights_high_variance_cells(self):
        taken = self._pressured("neyman")
        assert taken["a"] > taken["b"] > 0

    def test_uniform_splits_the_remainder_evenly(self):
        taken = self._pressured("uniform")
        assert taken["a"] == taken["b"] > 0

    def test_summary_shape(self):
        config = AdaptiveConfig(target_ci=0.9, min_per_cell=10)
        controller = AdaptiveController(config)
        units = _units([10] * 5)
        controller.add_cell("a", units)
        for unit in controller.next_round():
            controller.observe(unit, _report(10, 3))
        (entry,) = controller.summary()
        assert entry["cell"] == "a"
        assert entry["trials"] == 10 and entry["sdc"] == 3
        assert entry["units"] == 1 and entry["plan_units"] == 5
        assert entry["converged"] is True
        assert entry["exhausted"] is False
        assert entry["ci_width"] == pytest.approx(
            entry["ci_high"] - entry["ci_low"])

    def test_custom_outcomes_extractor(self):
        controller = AdaptiveController(
            AdaptiveConfig(target_ci=0.9, min_per_cell=10),
            outcomes=lambda r: (r["n"], r["bad"]))
        units = _units([10] * 2)
        controller.add_cell("a", units)
        controller.observe(units[0], {"n": 10, "bad": 4})
        assert controller._cells["a"].trials == 10
        assert controller._cells["a"].successes == 4
