"""Regenerate the golden artifact fixtures.

These fixtures were produced by the **pre-refactor** serialisers (the
hand-rolled ``to_dict`` implementations that predate ``repro.artifacts``)
and are checked in as the compatibility contract: every future version of
the artifact layer must keep loading them, and reports merged from the
journal fixtures must stay bit-identical to the report fixtures.

Running this script against any later code therefore MUST reproduce the
checked-in files byte for byte (except ``campaign_metrics.json`` timing
fields, which are pinned below).  A diff after regeneration means an
artifact schema changed without a version bump + migration.

Usage::

    PYTHONPATH=src python tests/fixtures/artifacts/make_fixtures.py
"""

import json
import sys
from pathlib import Path

HERE = Path(__file__).parent

#: Small-but-representative campaign parameters.  DO NOT change them:
#: the fixtures exist to pin the historical byte format.
RTL = dict(opcode="FADD", input_range="M", module="fp32", n_faults=40,
           seed=5, batch_size=10)
PVF = dict(app="MxM", injections=60, seed=13, batch_size=20)
DB = dict(opcodes=("FADD", "IADD"), grid_faults=30, tmxm_faults=20,
          seed=7)


def _write(name: str, text: str) -> None:
    path = HERE / name
    path.write_text(text)
    print(f"wrote {path} ({len(text)} bytes)")


def _strip_schema_stamp(journal: Path) -> None:
    """Rewrite a journal's header to its pre-artifact-layer form.

    Checkpoints now stamp ``"schema": <kind>`` into their header; the
    journal fixtures pin the *older* header (without the stamp) so
    resuming pre-refactor journals stays covered.  Batch lines are
    already byte-identical across the refactor.
    """
    lines = journal.read_text().splitlines(keepends=True)
    header = json.loads(lines[0])
    header.pop("schema", None)
    lines[0] = json.dumps(header) + "\n"
    journal.write_text("".join(lines))


def rtl_fixtures() -> None:
    from repro.gpu.isa import Opcode
    from repro.rtl.campaign import run_campaign
    from repro.rtl.microbench import make_microbenchmark

    bench = make_microbenchmark(Opcode(RTL["opcode"]), RTL["input_range"],
                                seed=RTL["seed"])
    journal = HERE / "rtl_journal.jsonl"
    report = run_campaign(bench, RTL["module"], RTL["n_faults"],
                          seed=RTL["seed"], batch_size=RTL["batch_size"],
                          checkpoint=journal)
    (HERE / "rtl_journal.metrics.json").unlink(missing_ok=True)
    _strip_schema_stamp(journal)
    _write("rtl_report.json", json.dumps(report.to_dict()) + "\n")
    print(f"wrote {journal}")


def pvf_fixtures() -> None:
    from repro.apps import make_application
    from repro.swfi.campaign import run_pvf_campaign
    from repro.swfi.models import SingleBitFlip

    app = make_application(PVF["app"], seed=PVF["seed"])
    journal = HERE / "pvf_journal.jsonl"
    metrics_sidecar = HERE / "pvf_journal.metrics.json"
    report = run_pvf_campaign(app, SingleBitFlip(), PVF["injections"],
                              seed=PVF["seed"],
                              batch_size=PVF["batch_size"],
                              checkpoint=journal)
    _strip_schema_stamp(journal)
    _write("pvf_report.json", json.dumps(report.to_dict()) + "\n")
    print(f"wrote {journal}")

    # campaign-metrics fixture: real collector output with the
    # non-deterministic timing fields pinned so regeneration is stable
    payload = json.loads(metrics_sidecar.read_text())
    metrics_sidecar.unlink()
    payload["wall_seconds"] = 1.0
    payload["units_per_second"] = round(payload["units_done"] / 1.0, 3)
    payload["injections_per_second"] = round(payload["injections"] / 1.0, 3)
    for i, unit in enumerate(payload["units"]):
        unit["seconds"] = round(0.25 + 0.01 * i, 6)
        unit["queue_wait"] = 0.0
        unit["worker"] = 4242
    # one load/dump pass makes the fixture a round-trip fixed point
    # (per-unit outcome keys serialise sorted, so a reloaded collector
    # aggregates its totals in that order too)
    from repro.campaign.telemetry import CampaignMetrics
    payload = CampaignMetrics.from_dict(payload).to_dict()
    _write("campaign_metrics.json", json.dumps(payload, indent=2) + "\n")


def syndrome_fixture() -> None:
    from repro.gpu.isa import Opcode
    from repro.rtl.campaign import run_grid, run_tmxm_grid
    from repro.syndrome.builder import build_database

    reports = run_grid(opcodes=[Opcode(o) for o in DB["opcodes"]],
                       n_faults=DB["grid_faults"], seed=DB["seed"])
    tmxm = run_tmxm_grid(n_faults=DB["tmxm_faults"], seed=DB["seed"] + 1)
    database = build_database(reports, tmxm)
    payload = database.to_dict()
    # the fixture pins the *v1* byte format (pre-precision keys); strip
    # the fp32 precision element the v2 dump appends so regeneration
    # reproduces the checked-in file byte for byte
    for entry in payload["entries"]:
        assert entry["key"][3] == "fp32", "fixture grid is fp32-only"
        entry["key"] = entry["key"][:3]
    _write("syndrome_db.json", json.dumps(payload))


def job_fixture() -> None:
    import tempfile

    from repro.service.store import JobStore

    with tempfile.TemporaryDirectory() as tmp:
        store = JobStore(Path(tmp) / "jobs.sqlite3")
        store.submit("pvf", {"app": "MxM", "injections": 60, "seed": 13})
        job = store.finish(1, "done", result={"pvf": 0.25,
                                              "n_injections": 60})
    payload = job.to_dict()
    payload["submitted_at"] = 1722500000.0   # pin wall-clock stamps
    payload["finished_at"] = 1722500060.0
    _write("job_record.json", json.dumps(payload, indent=2) + "\n")


def pattern_fixture() -> None:
    """Pattern-report golden: mined from the rtl_report fixture."""
    from repro.analytics import mine_patterns
    from repro.artifacts import dump_artifact
    from repro.rtl.reports import CampaignReport

    report = CampaignReport.from_dict(
        json.loads((HERE / "rtl_report.json").read_text()))
    payload = dump_artifact("pattern-report", mine_patterns(report))
    _write("pattern_report.json", json.dumps(payload) + "\n")


def main() -> None:
    rtl_fixtures()
    pvf_fixtures()
    syndrome_fixture()
    job_fixture()
    pattern_fixture()


if __name__ == "__main__":
    sys.exit(main())
