"""FIT estimation tests."""

import pytest

from repro.analysis.fit import DEFAULT_RAW_FIT_PER_MBIT, FitEstimator
from repro.swfi.campaign import PVFReport


@pytest.fixture
def estimator():
    return FitEstimator({"fp32": 1_000_000, "pipeline": 2_000_000},
                        raw_fit_per_mbit=100.0)


def _pvf(pvf=0.5):
    return PVFReport("app", "model", n_injections=100, n_sdc=int(100 * pvf))


class TestArrival:
    def test_size_proportional(self, estimator):
        assert estimator.module_arrival_fit("fp32") == pytest.approx(100.0)
        assert estimator.module_arrival_fit("pipeline") == \
            pytest.approx(200.0)

    def test_unknown_module(self, estimator):
        with pytest.raises(KeyError):
            estimator.module_arrival_fit("nvlink")

    def test_positive_rate_required(self):
        with pytest.raises(ValueError):
            FitEstimator({"fp32": 10}, raw_fit_per_mbit=0.0)


class TestEstimate:
    def test_combines_avf_and_pvf(self, estimator, small_reports):
        estimate = estimator.estimate(small_reports, _pvf(0.5))
        assert estimate.sdc_fit > 0.0
        assert estimate.total_fit >= estimate.sdc_fit
        assert set(estimate.per_module_sdc) <= {"fp32", "pipeline"}

    def test_pvf_scales_sdc_only(self, estimator, small_reports):
        low = estimator.estimate(small_reports, _pvf(0.1))
        high = estimator.estimate(small_reports, _pvf(1.0))
        assert high.sdc_fit == pytest.approx(10 * low.sdc_fit)
        assert high.due_fit == pytest.approx(low.due_fit)

    def test_dominant_module(self, estimator, small_reports):
        estimate = estimator.estimate(small_reports, _pvf(0.5))
        dominant = estimate.dominant_module()
        assert dominant in ("fp32", "pipeline")

    def test_default_rate_order_of_magnitude(self):
        assert 10.0 <= DEFAULT_RAW_FIT_PER_MBIT <= 1e5
