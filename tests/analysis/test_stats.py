"""Statistics tests."""

import math

import numpy as np
import pytest

from repro.analysis.stats import (
    log_histogram,
    margin_of_error,
    proportion_confidence_interval,
    sample_size_for_margin,
    wilson_interval,
)


class TestMarginOfError:
    def test_paper_scale(self):
        """12,000 faults per campaign -> margin below 3% (paper Sec. V-B)."""
        assert margin_of_error(12_000) < 0.03

    def test_shrinks_with_samples(self):
        assert margin_of_error(10_000) < margin_of_error(1_000)

    def test_known_value(self):
        # classic n=1067 -> ~3% at 95%, p=0.5, infinite population
        assert margin_of_error(1067) == pytest.approx(0.03, abs=0.002)

    def test_finite_population_correction(self):
        # sampling the whole population leaves no error
        assert margin_of_error(1000, population=1000) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            margin_of_error(0)
        with pytest.raises(ValueError):
            margin_of_error(10, confidence=1.5)


class TestSampleSize:
    def test_inverse_of_margin(self):
        n = sample_size_for_margin(0.03)
        assert margin_of_error(n) <= 0.0301

    def test_tighter_margin_needs_more(self):
        assert sample_size_for_margin(0.01) > sample_size_for_margin(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_size_for_margin(0.0)


class TestWilson:
    def test_bounds_ordered_and_clamped(self):
        lo, hi = wilson_interval(0, 100)
        assert 0.0 <= lo <= hi <= 1.0
        lo, hi = wilson_interval(100, 100)
        assert hi == 1.0

    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_paper_campaign_ci_below_five_percent(self):
        """6,000 injections -> 95% CI half-width under 5% (Sec. VI)."""
        lo, hi = proportion_confidence_interval(3000, 6000)
        assert hi - lo < 0.05

    def test_zero_trials_uninformative(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert proportion_confidence_interval(0, 0) == (0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(0, -1)


class TestLogHistogram:
    def test_fractions_sum_to_one(self):
        edges, fractions = log_histogram([1e-9, 1e-4, 0.5, 10.0, 1e5])
        assert fractions.sum() == pytest.approx(1.0)

    def test_tails_clipped_into_outer_bins(self):
        edges, fractions = log_histogram([1e-20, 1e20])
        assert fractions[0] == pytest.approx(0.5)
        assert fractions[-1] == pytest.approx(0.5)

    def test_empty_input(self):
        edges, fractions = log_histogram([])
        assert fractions.sum() == 0.0

    def test_non_finite_filtered(self):
        _, fractions = log_histogram([math.inf, math.nan, 1.0])
        assert fractions.sum() == pytest.approx(1.0)
