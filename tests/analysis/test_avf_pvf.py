"""AVF/PVF aggregation tests."""

import pytest

from repro.analysis.avf import (
    aggregate_avf,
    avf_range_spread,
    mean_corrupted_threads_by_module,
)
from repro.analysis.pvf import (
    PvfComparison,
    compare_models,
    mean_underestimation,
    underestimation,
)
from repro.rtl.classify import (
    CorruptedValue,
    Outcome,
    RunClassification,
)
from repro.rtl.reports import CampaignReport, FaultDescriptor
from repro.swfi.campaign import PVFReport


def _report(instruction, input_range, module, sdc1=2, sdcn=1, due=1,
            masked=6):
    report = CampaignReport(instruction, input_range, module)
    fault = FaultDescriptor(module, "reg", 0, 0, 0)
    for _ in range(masked):
        report.add(fault, RunClassification(Outcome.MASKED), instruction,
                   "f32")
    for _ in range(sdc1):
        corrupted = [CorruptedValue(0, 0, 1, 2)]
        report.add(fault, RunClassification(Outcome.SDC, corrupted),
                   instruction, "f32")
    for _ in range(sdcn):
        corrupted = [CorruptedValue(t, t, 1, 2) for t in range(4)]
        report.add(fault, RunClassification(Outcome.SDC, corrupted),
                   instruction, "f32")
    for _ in range(due):
        report.add(fault, RunClassification(Outcome.DUE), instruction,
                   "f32")
    return report


class TestAvfAggregation:
    def test_components(self):
        cells = aggregate_avf([_report("FADD", "M", "fp32")])
        cell = cells[0]
        assert cell.n_injections == 10
        assert cell.sdc_single == pytest.approx(0.2)
        assert cell.sdc_multiple == pytest.approx(0.1)
        assert cell.due == pytest.approx(0.1)
        assert cell.total == pytest.approx(0.4)

    def test_ranges_averaged(self):
        reports = [_report("FADD", r, "fp32") for r in ("S", "M", "L")]
        cells = aggregate_avf(reports)
        assert len(cells) == 1
        assert cells[0].n_injections == 30

    def test_range_spread(self):
        reports = [
            _report("FADD", "S", "fp32", sdc1=1),  # AVF = 3/9
            _report("FADD", "L", "fp32", sdc1=3),  # AVF = 5/11
        ]
        spread = avf_range_spread(reports)
        assert spread[("fp32", "FADD")] == pytest.approx(5 / 11 - 3 / 9)

    def test_mean_threads_by_module(self):
        means = mean_corrupted_threads_by_module(
            [_report("FADD", "M", "scheduler", sdc1=1, sdcn=1)])
        assert means["scheduler"] == pytest.approx((1 + 4) / 2)


class TestPvfComparison:
    def test_underestimation(self):
        assert underestimation(0.5, 1.0) == pytest.approx(0.5)
        assert underestimation(1.0, 1.0) == 0.0
        assert underestimation(0.2, 0.0) == 0.0
        # the syndrome model never *under*-reports as negative
        assert underestimation(1.0, 0.5) == 0.0

    def test_compare_models_pairs_by_app(self):
        bitflip = [PVFReport("A", "bf", 100, n_sdc=25),
                   PVFReport("B", "bf", 100, n_sdc=90)]
        syndrome = [PVFReport("A", "re", 100, n_sdc=37)]
        comparisons = compare_models(bitflip, syndrome)
        assert len(comparisons) == 1
        assert comparisons[0].app_name == "A"
        assert comparisons[0].underestimation == pytest.approx(
            (0.37 - 0.25) / 0.37)

    def test_mean_underestimation(self):
        comparisons = [
            PvfComparison("A", 0.5, 1.0),
            PvfComparison("B", 1.0, 1.0),
        ]
        assert mean_underestimation(comparisons) == pytest.approx(0.25)
        assert mean_underestimation([]) == 0.0
