"""Figure/table renderer tests."""

import pytest

from repro.analysis.avf import aggregate_avf
from repro.analysis.figures import (
    render_fig3,
    render_fig4,
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_syndrome_histograms,
)
from repro.analysis.tables import (
    PAPER_TABLE1_SIZES,
    PAPER_TABLE3_PVF,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.pvf import PvfComparison
from repro.swfi.campaign import PVFReport
from repro.swfi.profiler import InstructionProfile
from repro.gpu.isa import Opcode
from repro.syndrome.builder import entry_from_report, tmxm_entry_from_report


class TestTableRenderers:
    def test_table1_lists_all_modules(self, injector):
        text = render_table1(injector.plane)
        for module in ("fp32", "int", "sfu", "scheduler", "pipeline"):
            assert module in text
        assert str(PAPER_TABLE1_SIZES["fp32"]) in text

    def test_table2(self, small_tmxm_reports):
        entries = [tmxm_entry_from_report(r) for r in small_tmxm_reports]
        text = render_table2(entries)
        assert "scheduler" in text and "pipeline" in text
        assert "(paper)" in text

    def test_table3(self):
        comparisons = [PvfComparison("MxM", 0.9, 1.0)]
        text = render_table3(comparisons, sizes={"MxM": "48x48"})
        assert "MxM" in text and "48x48" in text
        assert f"{PAPER_TABLE3_PVF['MxM']['relative']:.2f}" in text


class TestFigureRenderers:
    def test_fig3(self):
        profile = InstructionProfile("MxM", {Opcode.FFMA: 70,
                                             Opcode.GLD: 20}, 10)
        text = render_fig3([profile])
        assert "MxM" in text and "0.70" in text

    def test_fig4(self, small_reports):
        text = render_fig4(aggregate_avf(small_reports))
        assert "fp32" in text and "FADD" in text

    def test_syndrome_histograms(self, small_reports):
        entries = [entry_from_report(r) for r in small_reports[:3]]
        text = render_syndrome_histograms(entries, "Figure 5 — FP")
        assert text.startswith("Figure 5")
        assert "FADD" in text

    def test_fig7(self, small_tmxm_reports):
        cells = aggregate_avf(small_tmxm_reports)
        text = render_fig7(cells, {"FFMA": "Random"})
        assert "scheduler" in text and "Random" in text

    def test_fig8(self, small_tmxm_reports):
        entries = [tmxm_entry_from_report(r) for r in small_tmxm_reports]
        text = render_fig8(entries)
        assert "scheduler/Random" in text

    def test_fig9(self, small_tmxm_reports):
        entries = [tmxm_entry_from_report(r) for r in small_tmxm_reports]
        text = render_fig9(entries[0])
        assert "Figure 9" in text

    def test_fig10(self):
        bitflip = [PVFReport("MxM", "bf", 100, n_sdc=80)]
        syndrome = [PVFReport("MxM", "re", 100, n_sdc=90)]
        text = render_fig10(bitflip, syndrome)
        assert "underestimation" in text
        assert "0.800" in text and "0.900" in text
