"""Unified progress reporting."""

import io

from repro.campaign import ProgressReporter, make_progress


class TestProgressReporter:
    def test_advance_counts_and_formats(self):
        out = io.StringIO()
        progress = ProgressReporter(total=3, prefix="rtl", stream=out)
        progress.advance("cell a")
        progress.advance("cell b", cached=True)
        lines = out.getvalue().splitlines()
        assert lines[0] == "[1/3] rtl cell a"
        assert lines[1] == "[2/3] rtl cell b (cached)"
        assert progress.done == 2

    def test_unknown_total(self):
        out = io.StringIO()
        progress = ProgressReporter(prefix="", stream=out)
        progress.advance("x")
        assert out.getvalue() == "[1] x\n"

    def test_status_line(self):
        out = io.StringIO()
        ProgressReporter(stream=out).status("stage 1")
        assert out.getvalue() == "stage 1\n"

    def test_disabled_still_counts(self):
        out = io.StringIO()
        progress = ProgressReporter(total=2, stream=out, enabled=False)
        progress.advance("a")
        progress.status("quiet")
        assert out.getvalue() == ""
        assert progress.done == 1

    def test_make_progress_quiet(self):
        out = io.StringIO()
        progress = make_progress(5, "pvf", quiet=True, stream=out)
        progress.advance("batch 0")
        assert out.getvalue() == ""
        assert progress.done == 1

    def test_stderr_default(self):
        assert make_progress().stream is not None
