"""End-to-end pipeline: streaming build, stage-boundary resume."""

import json

import pytest

from repro.campaign.pipeline import run_pipeline
from repro.errors import CampaignError
from repro.gpu import Opcode

#: Small but family-complete config: FADD covers the float datapath,
#: IADD the integer one (whose family includes the memory/control ops),
#: so the distilled database can serve every opcode the apps execute.
CONFIG = dict(
    seed=7,
    opcodes=[Opcode.FADD, Opcode.IADD],
    grid_faults=30,
    tmxm_faults=20,
    apps=["MxM"],
    injections=40,
    quiet=True,
)


@pytest.fixture(scope="module")
def finished(tmp_path_factory):
    """One completed pipeline run shared by the resume tests."""
    workdir = tmp_path_factory.mktemp("pipeline")
    summary = run_pipeline(workdir, **CONFIG)
    return workdir, summary


class TestEndToEnd:
    def test_produces_all_artifacts(self, finished):
        workdir, summary = finished
        for name in ("rtl_grid.jsonl", "tmxm.jsonl", "syndrome_db.json",
                     "pvf_MxM_bitflip.jsonl", "pvf_MxM_syndrome.jsonl",
                     "pipeline_summary.json"):
            assert (workdir / name).exists(), name

    def test_summary_contents(self, finished):
        workdir, summary = finished
        assert summary["seed"] == 7
        assert summary["database"]["entries"] > 0
        assert summary["database"]["tmxm_entries"] == 6
        models = {row["model"] for row in summary["pvf"]}
        assert models == {"single-bit-flip", "relative-error"}
        for row in summary["pvf"]:
            assert row["n_injections"] == 40
            assert 0.0 <= row["pvf"] <= 1.0
        on_disk = json.loads(
            (workdir / "pipeline_summary.json").read_text())
        assert on_disk == summary

    def test_rerun_replays_everything(self, finished):
        workdir, summary = finished
        again = run_pipeline(workdir, **CONFIG)
        assert again == summary

    def test_existing_database_skips_rtl_stages(self, finished):
        workdir, summary = finished
        # wreck the RTL journals: with the database present they must
        # not even be opened
        grid_text = (workdir / "rtl_grid.jsonl").read_text()
        tmxm_text = (workdir / "tmxm.jsonl").read_text()
        try:
            (workdir / "rtl_grid.jsonl").write_text("garbage\n")
            (workdir / "tmxm.jsonl").write_text("garbage\n")
            again = run_pipeline(workdir, **CONFIG)
        finally:
            (workdir / "rtl_grid.jsonl").write_text(grid_text)
            (workdir / "tmxm.jsonl").write_text(tmxm_text)
        assert again == summary


class TestStageResume:
    def test_resumes_mid_rtl_grid(self, finished, tmp_path):
        _, summary = finished
        workdir = tmp_path / "resume"
        workdir.mkdir()
        # simulate a kill during the RTL grid: a partial journal
        done_grid = finished[0] / "rtl_grid.jsonl"
        lines = done_grid.read_text().splitlines()
        assert len(lines) > 3
        (workdir / "rtl_grid.jsonl").write_text(
            "\n".join(lines[:3]) + "\n")
        resumed = run_pipeline(workdir, **CONFIG)
        assert resumed["pvf"] == summary["pvf"]
        assert resumed["database"]["entries"] == \
            summary["database"]["entries"]

    def test_resumes_after_database_stage(self, finished, tmp_path):
        _, summary = finished
        workdir = tmp_path / "post-db"
        workdir.mkdir()
        db_text = (finished[0] / "syndrome_db.json").read_text()
        (workdir / "syndrome_db.json").write_text(db_text)
        resumed = run_pipeline(workdir, **CONFIG)
        assert resumed["pvf"] == summary["pvf"]
        assert not (workdir / "rtl_grid.jsonl").exists()

    def test_fresh_discards_state(self, finished, tmp_path):
        _, summary = finished
        workdir = tmp_path / "fresh"
        workdir.mkdir()
        (workdir / "syndrome_db.json").write_text("{}")  # stale/empty
        config = dict(CONFIG, fresh=True)
        fresh = run_pipeline(workdir, **config)
        # identical up to the workdir-dependent database path
        assert fresh["pvf"] == summary["pvf"]
        assert fresh["database"]["entries"] == \
            summary["database"]["entries"]
        assert fresh["database"]["tmxm_entries"] == \
            summary["database"]["tmxm_entries"]


class TestValidation:
    def test_unknown_model_rejected(self, tmp_path):
        with pytest.raises(CampaignError):
            run_pipeline(tmp_path, models=["voodoo"], quiet=True)

    def test_unknown_app_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            run_pipeline(tmp_path / "w", seed=1,
                         opcodes=[Opcode.FADD, Opcode.IADD],
                         grid_faults=10, tmxm_faults=10,
                         apps=["NoSuchApp"], injections=10, quiet=True)


class TestTelemetryArtifacts:
    def test_per_stage_metrics_written(self, finished):
        from repro.campaign import load_metrics

        workdir, _ = finished
        for name, stage in (("rtl_grid", "rtl-grid"),
                            ("tmxm", "rtl-tmxm"),
                            ("pvf_MxM_bitflip", "pvf/MxM/bitflip"),
                            ("pvf_MxM_syndrome", "pvf/MxM/syndrome")):
            payload = load_metrics(workdir / f"{name}.metrics.json")
            assert payload["stage"] == stage
            assert payload["units_done"] > 0
            assert payload["injections"] > 0

    def test_combined_metrics_schema(self, finished):
        from repro.campaign import validate_metrics
        from repro.campaign.telemetry import PIPELINE_KIND

        workdir, _ = finished
        combined = json.loads((workdir / "metrics.json").read_text())
        assert combined["kind"] == PIPELINE_KIND
        stages = [validate_metrics(s) for s in combined["stages"]]
        assert [s["stage"] for s in stages] == [
            "rtl-grid", "rtl-tmxm", "pvf/MxM/bitflip", "pvf/MxM/syndrome"]
        # grid telemetry covers the whole instruction grid
        grid = stages[0]
        assert grid["injections"] == sum(
            u["injections"] for u in grid["units"])

    def test_rerun_keeps_rtl_stages_in_combined_metrics(self, finished):
        # DB exists -> RTL skipped, but its prior telemetry is retained
        workdir, summary = finished
        run_pipeline(workdir, **CONFIG)
        combined = json.loads((workdir / "metrics.json").read_text())
        stages = [s["stage"] for s in combined["stages"]]
        assert stages[:2] == ["rtl-grid", "rtl-tmxm"]
        # the replayed PVF stages report their units as cached
        for stage in combined["stages"][2:]:
            assert stage["units_cached"] == stage["units_done"]

    def test_stats_renders_workdir(self, finished):
        from repro.campaign import discover_metrics, render_stats

        workdir, _ = finished
        text = render_stats(discover_metrics(workdir))
        assert "rtl-grid" in text and "pvf/MxM/syndrome" in text
        assert "units/s" in text


class TestPrecisionPipeline:
    """--precision fp16 end to end: reduced-precision RTL grid,
    precision-keyed syndromes, PVF of a mixed-precision workload."""

    @pytest.fixture(scope="class")
    def fp16_run(self, tmp_path_factory):
        workdir = tmp_path_factory.mktemp("pipeline-fp16")
        summary = run_pipeline(
            workdir, seed=7, opcodes=[Opcode.FADD, Opcode.IADD],
            grid_faults=20, tmxm_faults=15, apps=["Transformer"],
            models=["bitflip", "syndrome"], injections=8, quiet=True,
            precision="fp16")
        return workdir, summary

    def test_summary_records_precision(self, fp16_run):
        _, summary = fp16_run
        assert summary["config"]["precision"] == "fp16"
        assert {row["app"] for row in summary["pvf"]} == {"Transformer"}
        assert {row["model"] for row in summary["pvf"]} == {
            "single-bit-flip", "relative-error"}

    def test_database_keys_carry_precision(self, fp16_run):
        from repro.syndrome.database import SyndromeDatabase

        workdir, _ = fp16_run
        db = SyndromeDatabase.load(workdir / "syndrome_db.json")
        precisions = {e.key.precision for e in db.entries()}
        modules = {e.key.module for e in db.entries()}
        # float cells characterise the fp16 unit; integer/scheduler/
        # pipeline cells stay precision-agnostic fp32
        assert "fp16" in precisions
        assert "fp16" in modules and "fp32" not in modules
        for entry in db.entries():
            if entry.key.module == "fp16":
                assert entry.key.precision == "fp16"

    def test_saved_database_is_schema_v2(self, fp16_run):
        workdir, _ = fp16_run
        payload = json.loads((workdir / "syndrome_db.json").read_text())
        version = payload.get("version")
        if version is not None:  # enveloped dumps announce the bump
            assert version == 2

    def test_unknown_precision_fails_fast(self, tmp_path):
        with pytest.raises(CampaignError, match="precision"):
            run_pipeline(tmp_path, apps=["MxM"], precision="fp8",
                         quiet=True)

    def test_fp32_only_app_fails_before_rtl(self, tmp_path):
        with pytest.raises(ValueError, match="fp32 only"):
            run_pipeline(tmp_path, apps=["MxM"], precision="fp16",
                         quiet=True)
        assert not (tmp_path / "rtl_grid.jsonl").exists()
