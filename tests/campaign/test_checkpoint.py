"""JSONL checkpoint journal: damage tolerance and header validation."""

import json

import pytest

from repro.campaign import CampaignCheckpoint
from repro.errors import CampaignError

HEADER = {"campaign": "test", "seed": 1}


def _journal(path, n_batches=3):
    ckpt = CampaignCheckpoint(path, HEADER)
    for index in range(n_batches):
        ckpt.record(index, {"value": index})
    return ckpt


class TestBasics:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignCheckpoint(path, HEADER)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "header"
        assert first["version"] == CampaignCheckpoint.VERSION
        assert first["campaign"] == "test"

    def test_record_and_replay(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _journal(path)
        resumed = CampaignCheckpoint(path, HEADER, resume=True)
        assert resumed.completed == {0: {"value": 0}, 1: {"value": 1},
                                     2: {"value": 2}}

    def test_decode_applied_on_load(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _journal(path, n_batches=1)
        resumed = CampaignCheckpoint(path, HEADER, resume=True,
                                     decode=lambda d: d["value"])
        assert resumed.completed == {0: 0}

    def test_no_resume_truncates(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _journal(path)
        fresh = CampaignCheckpoint(path, HEADER, resume=False)
        assert fresh.completed == {}
        assert len(path.read_text().splitlines()) == 1

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _journal(path)
        with pytest.raises(CampaignError):
            CampaignCheckpoint(path, {"campaign": "test", "seed": 2},
                               resume=True)

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text('{"not": "a header"}\n')
        with pytest.raises(CampaignError):
            CampaignCheckpoint(path, HEADER, resume=True)


class TestDamageTolerance:
    def test_truncated_trailing_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _journal(path)
        # simulate a kill mid-write: chop the last line in half
        text = path.read_text()
        path.write_text(text[:len(text) - 25])
        with pytest.warns(UserWarning, match="corrupt checkpoint line"):
            resumed = CampaignCheckpoint(path, HEADER, resume=True)
        assert sorted(resumed.completed) == [0, 1]  # batch 2 re-runs

    def test_damaged_journal_compacted_once(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _journal(path)
        with path.open("a") as fh:
            fh.write('{"kind": "batch", "ind')  # torn write
        with pytest.warns(UserWarning):
            CampaignCheckpoint(path, HEADER, resume=True)
        # the journal was rewritten clean: a second resume must not warn
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resumed = CampaignCheckpoint(path, HEADER, resume=True)
        assert sorted(resumed.completed) == [0, 1, 2]

    def test_undecodable_record_skipped_with_warning(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ckpt = CampaignCheckpoint(path, HEADER)
        ckpt.record(0, {"value": 0})
        with path.open("a") as fh:
            fh.write(json.dumps({"kind": "batch", "index": 1,
                                 "report": {"wrong": "shape"}}) + "\n")

        def decode(payload):
            return payload["value"]

        with pytest.warns(UserWarning, match="undecodable"):
            resumed = CampaignCheckpoint(path, HEADER, resume=True,
                                         decode=decode)
        assert resumed.completed == {0: 0}

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _journal(path, n_batches=1)
        with path.open("a") as fh:
            fh.write("\n\n")
        resumed = CampaignCheckpoint(path, HEADER, resume=True)
        assert sorted(resumed.completed) == [0]


class TestDurability:
    def test_records_survive_a_hard_kill(self, tmp_path):
        """A SIGKILLed writer loses no *completed* record (issue fix).

        Before per-record flushing, records sat in the stdio buffer and
        a hard kill lost every unit since the last drain.
        """
        import subprocess
        import sys

        path = tmp_path / "c.jsonl"
        script = (
            "import os, sys\n"
            "sys.path.insert(0, %r)\n"
            "from repro.campaign import CampaignCheckpoint\n"
            "ckpt = CampaignCheckpoint(%r, {'campaign': 'test', 'seed': 1})\n"
            "for index in range(5):\n"
            "    ckpt.record(index, {'value': index})\n"
            "os._exit(1)  # hard kill: no close(), no atexit, no GC\n"
        ) % (str((__import__('pathlib').Path(__file__).resolve()
                  .parents[2] / 'src')), str(path))
        proc = subprocess.run([sys.executable, "-c", script])
        assert proc.returncode == 1
        resumed = CampaignCheckpoint(path, HEADER, resume=True)
        assert sorted(resumed.completed) == [0, 1, 2, 3, 4]

    def test_record_flushes_immediately(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ckpt = CampaignCheckpoint(path, HEADER)
        ckpt.record(0, {"value": 0})
        # visible to an independent reader before any close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["index"] == 0

    def test_close_is_idempotent_and_record_reopens(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ckpt = CampaignCheckpoint(path, HEADER)
        ckpt.record(0, {"value": 0})
        ckpt.close()
        ckpt.close()
        ckpt.record(1, {"value": 1})  # lazily reopens in append mode
        ckpt.close()
        resumed = CampaignCheckpoint(path, HEADER, resume=True)
        assert sorted(resumed.completed) == [0, 1]

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with CampaignCheckpoint(path, HEADER) as ckpt:
            ckpt.record(0, {"value": 0})
        assert ckpt._fh.closed

    def test_resume_then_record_appends(self, tmp_path):
        path = tmp_path / "c.jsonl"
        _journal(path, n_batches=2)
        resumed = CampaignCheckpoint(path, HEADER, resume=True)
        resumed.record(2, {"value": 2})
        resumed.close()
        again = CampaignCheckpoint(path, HEADER, resume=True)
        assert sorted(again.completed) == [0, 1, 2]
