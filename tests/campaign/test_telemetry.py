"""Campaign telemetry: collection, schema, discovery, rendering."""

import json

import pytest

from repro.campaign import (
    CampaignMetrics,
    UnitRecord,
    discover_metrics,
    load_metrics,
    metrics_path_for,
    render_stats,
    validate_metrics,
)
from repro.campaign.telemetry import (
    PIPELINE_KIND,
    SCHEMA_KIND,
    SCHEMA_VERSION,
    emit_metrics,
    resolve_metrics,
)
from repro.errors import CampaignError


class FakeReport:
    """Duck-typed report carrying the sniffed outcome attributes."""

    def __init__(self, masked=0, sdc=0, due=0, general=()):
        self.n_masked = masked
        self.n_sdc = sdc
        self.n_due = due
        self.n_injections = masked + sdc + due
        self.general = list(general)


class DueRecord:
    def __init__(self, reason):
        self.due_reason = reason


class TestCollection:
    def test_record_unit_sniffs_report(self):
        metrics = CampaignMetrics("stage")
        record = metrics.record_unit(
            0, "FADD/M/fp32 [0]", size=50,
            report=FakeReport(masked=40, sdc=8, due=2),
            seconds=1.5, queue_wait=0.2, worker=123)
        assert record.outcomes == {"masked": 40, "sdc": 8, "due": 2}
        assert record.injections == 50
        assert record.worker == 123
        assert record.cell == "FADD/M/fp32"
        assert metrics.outcome_totals() == {"masked": 40, "sdc": 8,
                                            "due": 2}
        assert metrics.injections_total() == 50

    def test_timeouts_sniffed_from_due_reasons(self):
        report = FakeReport(due=2, general=[
            DueRecord("wall-clock guard: work unit exceeded 1s"),
            DueRecord("illegal value"),
        ])
        metrics = CampaignMetrics("stage")
        record = metrics.record_unit(0, report=report)
        assert record.timeouts == 1
        assert metrics.timeouts_total() == 1

    def test_cached_vs_run_counts(self):
        metrics = CampaignMetrics("stage", total_units=3)
        metrics.record_unit(0, cached=True)
        metrics.record_unit(1, cached=False)
        metrics.record_unit(2, cached=True)
        assert metrics.units_done == 3
        assert metrics.units_cached == 2
        assert metrics.units_run == 1

    def test_heartbeat_mentions_rate_eta_and_tally(self):
        metrics = CampaignMetrics("stage", total_units=4)
        metrics.record_unit(0, report=FakeReport(masked=3, sdc=1))
        beat = metrics.heartbeat()
        assert "units/s" in beat
        assert "eta" in beat
        assert "M/S/D 3/1/0" in beat

    def test_finish_restamps_for_multi_round_reuse(self):
        metrics = CampaignMetrics("stage")
        metrics.record_unit(0)
        metrics.finish()
        first = metrics.wall_seconds()
        metrics.record_unit(1)  # a new round re-opens the wall-clock
        metrics.finish()
        assert metrics.wall_seconds() >= first

    def test_negative_timings_clamped(self):
        metrics = CampaignMetrics("stage")
        record = metrics.record_unit(0, seconds=-0.5, queue_wait=-0.1)
        assert record.seconds == 0.0
        assert record.queue_wait == 0.0


class TestSchema:
    def _payload(self):
        metrics = CampaignMetrics("stage", total_units=2,
                                  meta={"app": "MxM"})
        metrics.record_unit(0, "cell [0]", size=10,
                            report=FakeReport(masked=9, sdc=1),
                            seconds=0.5)
        metrics.record_unit(1, "cell [1]", size=10, cached=True)
        metrics.finish()
        return metrics.to_dict()

    def test_round_trip(self):
        payload = self._payload()
        clone = CampaignMetrics.from_dict(
            json.loads(json.dumps(payload)))
        assert clone.to_dict() == payload

    def test_validate_accepts_own_output(self):
        payload = self._payload()
        assert validate_metrics(payload) is payload

    def test_validate_tolerates_extra_keys(self):
        payload = self._payload()
        payload["bench"] = {"speedup": 3.0}
        validate_metrics(payload)

    def test_validate_rejects_wrong_kind(self):
        payload = self._payload()
        payload["kind"] = "something-else"
        with pytest.raises(CampaignError, match="kind"):
            validate_metrics(payload)

    def test_validate_rejects_wrong_version(self):
        payload = self._payload()
        payload["version"] = SCHEMA_VERSION + 1
        with pytest.raises(CampaignError, match="version"):
            validate_metrics(payload)

    def test_validate_rejects_missing_field(self):
        payload = self._payload()
        del payload["units_done"]
        with pytest.raises(CampaignError, match="units_done"):
            validate_metrics(payload)

    def test_validate_rejects_bool_masquerading_as_int(self):
        payload = self._payload()
        payload["units_done"] = True
        with pytest.raises(CampaignError, match="units_done"):
            validate_metrics(payload)

    def test_validate_rejects_bad_unit(self):
        payload = self._payload()
        del payload["units"][0]["seconds"]
        with pytest.raises(CampaignError, match="seconds"):
            validate_metrics(payload)

    def test_unit_record_round_trip(self):
        record = UnitRecord(index=3, label="cell [3]", size=5,
                            seconds=1.25, queue_wait=0.5, cached=True,
                            worker=99, timeouts=1,
                            outcomes={"masked": 4, "due": 1},
                            injections=5)
        assert UnitRecord.from_dict(record.to_dict()) == record


class TestFilesAndDiscovery:
    def test_metrics_path_for(self):
        assert metrics_path_for("runs/rtl_grid.jsonl").name == \
            "rtl_grid.metrics.json"
        assert metrics_path_for("runs/pvf.json").name == \
            "pvf.metrics.json"

    def test_save_and_load(self, tmp_path):
        metrics = CampaignMetrics("stage")
        metrics.record_unit(0, report=FakeReport(masked=1))
        path = metrics.save(tmp_path / "m.json")
        loaded = load_metrics(path)
        assert loaded["stage"] == "stage"
        assert loaded["outcomes"] == {"masked": 1, "sdc": 0, "due": 0}

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CampaignError):
            load_metrics(path)
        with pytest.raises(CampaignError):
            load_metrics(tmp_path / "missing.json")

    def test_resolve_metrics_auto_creates_for_checkpointed_runs(self):
        assert resolve_metrics(None, None, "s") is None
        created = resolve_metrics(None, "journal.jsonl", "s")
        assert isinstance(created, CampaignMetrics)
        assert created.stage == "s"
        existing = CampaignMetrics("mine")
        assert resolve_metrics(existing, "journal.jsonl", "s") is existing

    def test_emit_metrics_writes_next_to_journal(self, tmp_path):
        journal = tmp_path / "c.jsonl"
        metrics = CampaignMetrics("stage")
        emit_metrics(metrics, journal)
        assert (tmp_path / "c.metrics.json").exists()
        emit_metrics(None, journal)  # opt-out stays silent

    def test_discover_workdir_prefers_combined(self, tmp_path):
        stage = CampaignMetrics("solo")
        stage.save(tmp_path / "solo.metrics.json")
        assert [p["stage"] for p in discover_metrics(tmp_path)] == ["solo"]
        combined = {"kind": PIPELINE_KIND, "version": SCHEMA_VERSION,
                    "stages": [CampaignMetrics("a").to_dict(),
                               CampaignMetrics("b").to_dict()]}
        (tmp_path / "metrics.json").write_text(json.dumps(combined))
        assert [p["stage"] for p in discover_metrics(tmp_path)] == \
            ["a", "b"]

    def test_discover_journal_uses_sibling(self, tmp_path):
        journal = tmp_path / "c.jsonl"
        journal.write_text("")
        CampaignMetrics("stage").save(metrics_path_for(journal))
        assert [p["stage"] for p in discover_metrics(journal)] == ["stage"]

    def test_discover_empty_dir_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="no metrics"):
            discover_metrics(tmp_path)
        with pytest.raises(CampaignError):
            discover_metrics(tmp_path / "nope")


class TestRendering:
    def test_stage_table_and_per_cell_breakdown(self):
        metrics = CampaignMetrics("rtl-grid", total_units=4)
        for i, cell in enumerate(["FADD/M/fp32", "FADD/M/fp32",
                                  "IADD/M/int", "IADD/M/int"]):
            metrics.record_unit(i, f"{cell} [{i % 2}]", size=10,
                                report=FakeReport(masked=8, sdc=2),
                                seconds=0.5)
        text = render_stats([metrics.to_dict()])
        assert "rtl-grid" in text
        assert "units/s" in text
        assert "per-cell throughput" in text
        assert "FADD/M/fp32" in text and "IADD/M/int" in text

    def test_per_cell_can_be_disabled(self):
        metrics = CampaignMetrics("stage")
        metrics.record_unit(0, "a [0]")
        metrics.record_unit(1, "b [0]")
        text = render_stats([metrics.to_dict()], per_cell=False)
        assert "per-cell" not in text

    def test_schema_kind_constant_round_trips(self):
        assert CampaignMetrics("s").to_dict()["kind"] == SCHEMA_KIND
