"""Level-agnostic campaign engine: planning, execution, merge order."""

import time
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List

import pytest

from repro.campaign import (
    DEFAULT_BATCH_SIZE,
    CampaignCheckpoint,
    Mergeable,
    UnitTimeout,
    WorkUnit,
    merge_ordered,
    plan_batches,
    plan_units,
    run_units,
    wall_clock_limit,
)
from repro.errors import CampaignError
from repro.rng import spawn_seed_range


@dataclass
class TallyReport:
    """Minimal Mergeable: remembers which (seed, size) pairs it saw."""

    seen: List[List[int]] = field(default_factory=list)

    def merge_in(self, other):
        self.seen.extend(other.seen)

    @classmethod
    def merge(cls, reports):
        merged = cls()
        for report in reports:
            merged.merge_in(report)
        return merged

    def to_dict(self):
        return {"seen": [list(pair) for pair in self.seen]}

    @classmethod
    def from_dict(cls, payload):
        return cls(seen=[list(pair) for pair in payload["seen"]])


def run_tally(state, unit):
    return TallyReport(seen=[[unit.seed, unit.size]])


def make_state():
    return "state"


class TestPlanning:
    def test_plan_batches_default_size(self):
        assert plan_batches(120) == [50, 50, 20]
        assert plan_batches(120, 50) == [50, 50, 20]
        assert plan_batches(0) == []

    def test_plan_batches_rejects_bad_sizes(self):
        with pytest.raises(CampaignError):
            plan_batches(10, 0)
        with pytest.raises(CampaignError):
            plan_batches(-1)

    def test_plan_units_sizes_and_seeds(self):
        units = plan_units(120, seed=9, batch_size=50)
        assert [u.size for u in units] == [50, 50, 20]
        assert [u.index for u in units] == [0, 1, 2]
        assert [u.seed for u in units] == spawn_seed_range(9, 0, 3)

    def test_plan_units_base_index_offsets_indices_and_seeds(self):
        units = plan_units(60, seed=9, batch_size=30, base_index=5)
        assert [u.index for u in units] == [5, 6]
        # unit base_index + i draws from child base_index + i of *seed*,
        # so contiguous re-planning (adaptive growth) stays on the same
        # random streams
        assert [u.seed for u in units] == spawn_seed_range(9, 5, 2)

    def test_plan_units_carries_spec_and_label(self):
        units = plan_units(60, seed=1, batch_size=40, spec="cell",
                           label="fp32")
        assert all(u.spec == "cell" for u in units)
        assert units[0].label.startswith("fp32")

    def test_default_batch_size_constant(self):
        assert DEFAULT_BATCH_SIZE == 50


class TestMerge:
    def test_merge_ordered_sorts_by_index(self):
        results = {2: TallyReport(seen=[[2, 0]]),
                   0: TallyReport(seen=[[0, 0]]),
                   1: TallyReport(seen=[[1, 0]])}
        merged = merge_ordered(results)
        assert [pair[0] for pair in merged.seen] == [0, 1, 2]

    def test_merge_ordered_rejects_empty(self):
        with pytest.raises(CampaignError):
            merge_ordered({})

    def test_tally_satisfies_protocol(self):
        assert isinstance(TallyReport(), Mergeable)


class TestRunUnitsSerial:
    def test_runs_every_unit(self):
        units = plan_units(100, seed=4, batch_size=40)
        results = run_units(units, run_tally)
        assert sorted(results) == [0, 1, 2]
        merged = merge_ordered(results)
        assert [pair[1] for pair in merged.seen] == [40, 40, 20]

    def test_state_factory_called_lazily(self):
        calls = []

        def factory():
            calls.append(1)
            return "state"

        run_units([], run_tally, state_factory=factory)
        assert calls == []  # nothing to do -> no state built
        run_units(plan_units(10, 0, 10), run_tally, state_factory=factory)
        assert calls == [1]

    def test_consume_receives_index_order(self):
        units = plan_units(90, seed=2, batch_size=30)
        order = []
        run_units(units, run_tally,
                  consume=lambda index, report: order.append(index))
        assert order == [0, 1, 2]

    def test_collect_false_returns_empty(self):
        units = plan_units(60, seed=2, batch_size=30)
        seen = []
        results = run_units(units, run_tally, collect=False,
                            consume=lambda i, r: seen.append(i))
        assert results == {}
        assert seen == [0, 1]

    def test_rejects_bad_job_count(self):
        with pytest.raises(CampaignError):
            run_units([], run_tally, n_jobs=0)


class TestRunUnitsParallel:
    @pytest.mark.multicore
    def test_matches_serial(self):
        units = plan_units(200, seed=11, batch_size=25)
        serial = run_units(units, run_tally)
        parallel = run_units(units, run_tally, n_jobs=3,
                             state_factory=make_state)
        assert merge_ordered(serial).to_dict() == \
            merge_ordered(parallel).to_dict()

    @pytest.mark.multicore
    def test_consume_order_is_deterministic(self):
        units = plan_units(200, seed=11, batch_size=25)
        order = []
        run_units(units, run_tally, n_jobs=4, state_factory=make_state,
                  consume=lambda index, report: order.append(index),
                  collect=False)
        assert order == [u.index for u in units]


class TestCheckpointedRun:
    def test_replayed_units_are_not_rerun(self, tmp_path):
        units = plan_units(100, seed=8, batch_size=25)
        header = {"campaign": "tally", "seed": 8}
        path = tmp_path / "units.jsonl"
        first = run_units(
            units, run_tally,
            checkpoint=CampaignCheckpoint(path, header,
                                          decode=TallyReport.from_dict))
        # drop the last journal line, then resume
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        executed = []

        def counting_run(state, unit):
            executed.append(unit.index)
            return run_tally(state, unit)

        resumed = run_units(
            units, counting_run,
            checkpoint=CampaignCheckpoint(path, header, resume=True,
                                          decode=TallyReport.from_dict))
        assert executed == [3]
        assert merge_ordered(resumed).to_dict() == \
            merge_ordered(first).to_dict()

    def test_consume_includes_replayed_units(self, tmp_path):
        units = plan_units(60, seed=8, batch_size=30)
        header = {"campaign": "tally"}
        path = tmp_path / "units.jsonl"
        run_units(units, run_tally,
                  checkpoint=CampaignCheckpoint(
                      path, header, decode=TallyReport.from_dict))
        order = []
        run_units(units, run_tally,
                  checkpoint=CampaignCheckpoint(
                      path, header, resume=True,
                      decode=TallyReport.from_dict),
                  consume=lambda index, report: order.append(index))
        assert order == [0, 1]  # fully cached, still streamed in order


def slow_unit(state, unit):
    with wall_clock_limit(0.2):
        time.sleep(5)
    return TallyReport()


class TestWallClock:
    def test_expires_with_unit_timeout(self):
        start = time.perf_counter()
        with pytest.raises(UnitTimeout):
            slow_unit(None, None)
        assert time.perf_counter() - start < 3.0

    def test_custom_exception_factory(self):
        with pytest.raises(RuntimeError, match="0.1"):
            with wall_clock_limit(0.1,
                                  lambda s: RuntimeError(f"after {s}")):
                time.sleep(5)

    def test_no_limit_is_noop(self):
        with wall_clock_limit(None):
            pass
        with wall_clock_limit(0):
            pass

    def test_inner_guard_restores_outer_budget(self):
        # issue: the inner guard used to cancel the outer timer outright
        with pytest.raises(UnitTimeout):
            with wall_clock_limit(0.4):
                with wall_clock_limit(5):
                    time.sleep(0.05)  # well inside the inner budget
                time.sleep(5)  # the restored outer guard must fire here

    def test_inner_timeout_leaves_outer_armed(self):
        with pytest.raises(UnitTimeout):
            with wall_clock_limit(0.5):
                with pytest.raises(UnitTimeout):
                    with wall_clock_limit(0.1):
                        time.sleep(5)
                time.sleep(5)  # outer still armed after the inner fired

    def test_outer_deadline_passed_inside_inner_fires_immediately(self):
        start = time.perf_counter()
        with pytest.raises(UnitTimeout):
            with wall_clock_limit(0.1):
                with wall_clock_limit(5):
                    time.sleep(0.3)  # outlives the suspended outer budget
                time.sleep(5)  # must be interrupted almost at once
        assert time.perf_counter() - start < 2.0


class TestMetricsThreading:
    def test_serial_run_records_every_unit(self):
        from repro.campaign import CampaignMetrics

        units = plan_units(100, seed=4, batch_size=40)
        metrics = CampaignMetrics("tally")
        run_units(units, run_tally, metrics=metrics)
        assert metrics.total_units == 3
        assert metrics.units_done == 3
        assert metrics.units_run == 3
        assert all(u.seconds >= 0 for u in metrics.units)
        assert all(u.worker > 0 for u in metrics.units)
        assert metrics.wall_seconds() > 0

    def test_replayed_units_marked_cached(self, tmp_path):
        from repro.campaign import CampaignMetrics

        units = plan_units(60, seed=8, batch_size=30)
        header = {"campaign": "tally"}
        path = tmp_path / "units.jsonl"
        run_units(units, run_tally,
                  checkpoint=CampaignCheckpoint(
                      path, header, decode=TallyReport.from_dict))
        metrics = CampaignMetrics("tally")
        run_units(units, run_tally, metrics=metrics,
                  checkpoint=CampaignCheckpoint(
                      path, header, resume=True,
                      decode=TallyReport.from_dict))
        assert metrics.units_done == 2
        assert metrics.units_cached == 2
        assert metrics.units_run == 0

    @pytest.mark.multicore
    def test_parallel_metrics_and_identical_reports(self):
        from repro.campaign import CampaignMetrics

        units = plan_units(200, seed=11, batch_size=25)
        serial = run_units(units, run_tally)
        metrics = CampaignMetrics("tally")
        parallel = run_units(units, run_tally, n_jobs=3,
                             state_factory=make_state, metrics=metrics)
        # telemetry observes, never perturbs: reports stay bit-identical
        assert merge_ordered(serial).to_dict() == \
            merge_ordered(parallel).to_dict()
        assert metrics.units_done == len(units)
        workers = {u.worker for u in metrics.units}
        assert workers and all(w > 0 for w in workers)
        assert all(u.queue_wait >= 0 for u in metrics.units)


def raise_interrupt(state, unit):
    raise KeyboardInterrupt


class TestCancellation:
    def test_serial_cancel_before_first_unit(self):
        from repro.errors import CampaignCancelled

        units = plan_units(40, seed=1, batch_size=10)
        with pytest.raises(CampaignCancelled, match="0/4 work units"):
            run_units(units, run_tally, cancel=lambda: True)

    def test_serial_cancel_keeps_journal_and_resumes(self, tmp_path):
        from repro.errors import CampaignCancelled

        units = plan_units(40, seed=1, batch_size=10)
        header = {"campaign": "tally"}
        path = tmp_path / "units.jsonl"
        answers = iter([False, False, True])
        with pytest.raises(CampaignCancelled) as excinfo:
            run_units(units, run_tally,
                      checkpoint=CampaignCheckpoint(
                          path, header, decode=TallyReport.from_dict),
                      cancel=lambda: next(answers))
        assert "2/4" in str(excinfo.value)
        assert str(path) in str(excinfo.value)
        # the two completed units are journaled; a resume runs the rest
        executed = []

        def counting_run(state, unit):
            executed.append(unit.index)
            return run_tally(state, unit)

        resumed = run_units(
            units, counting_run,
            checkpoint=CampaignCheckpoint(path, header, resume=True,
                                          decode=TallyReport.from_dict))
        assert executed == [2, 3]
        assert merge_ordered(resumed).to_dict() == \
            merge_ordered(run_units(units, run_tally)).to_dict()

    @pytest.mark.multicore
    def test_parallel_cancel_stops_pool(self):
        from repro.errors import CampaignCancelled

        units = plan_units(200, seed=3, batch_size=10)
        start = time.perf_counter()
        with pytest.raises(CampaignCancelled):
            run_units(units, run_tally, n_jobs=2,
                      state_factory=make_state, cancel=lambda: True)
        assert time.perf_counter() - start < 30

    def test_keyboard_interrupt_mentions_resume(self, tmp_path):
        units = plan_units(20, seed=1, batch_size=10)
        path = tmp_path / "units.jsonl"
        with pytest.raises(KeyboardInterrupt) as excinfo:
            run_units(units, raise_interrupt,
                      checkpoint=CampaignCheckpoint(
                          path, {"campaign": "tally"},
                          decode=TallyReport.from_dict))
        assert "resume with --resume" in str(excinfo.value)
        assert str(path) in str(excinfo.value)

    def test_keyboard_interrupt_without_checkpoint_is_bare(self):
        units = plan_units(20, seed=1, batch_size=10)
        with pytest.raises(KeyboardInterrupt) as excinfo:
            run_units(units, raise_interrupt)
        assert "--resume" not in str(excinfo.value)
