"""Shared fixtures: expensive objects built once per test session."""

from __future__ import annotations

import os

import pytest

from repro.gpu import Opcode
from repro.rtl import (
    RTLInjector,
    make_microbenchmark,
    make_tmxm_bench,
    run_campaign,
)
from repro.syndrome import build_database


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "multicore: needs more than one CPU (process-pool campaigns)")
    config.addinivalue_line(
        "markers",
        "slow: multi-second end-to-end test (daemon subprocesses)")


def pytest_collection_modifyitems(config, items):
    if (os.cpu_count() or 1) > 1:
        return
    skip = pytest.mark.skip(
        reason="multicore test skipped on a single-CPU runner")
    for item in items:
        if "multicore" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def injector():
    """One shared streaming multiprocessor for all RTL tests."""
    return RTLInjector()


@pytest.fixture(scope="session")
def small_reports(injector):
    """A handful of small campaign reports for analysis/syndrome tests."""
    cells = [
        (Opcode.FADD, "M", "fp32"),
        (Opcode.FADD, "S", "fp32"),
        (Opcode.FADD, "L", "fp32"),
        (Opcode.FMUL, "M", "fp32"),
        (Opcode.FFMA, "M", "fp32"),
        (Opcode.IADD, "M", "int"),
        (Opcode.IMUL, "M", "int"),
        (Opcode.IMAD, "M", "int"),
        (Opcode.FSIN, "M", "sfu"),
        (Opcode.FEXP, "M", "sfu"),
        (Opcode.FADD, "M", "pipeline"),
        (Opcode.GST, "M", "pipeline"),
        (Opcode.GLD, "M", "pipeline"),
        (Opcode.BRA, "M", "pipeline"),
        (Opcode.ISET, "M", "pipeline"),
    ]
    return [
        run_campaign(make_microbenchmark(op, rng_key, seed=3), module,
                     n_faults=300, seed=7, injector=injector)
        for op, rng_key, module in cells
    ]


@pytest.fixture(scope="session")
def small_tmxm_reports(injector):
    return [
        run_campaign(make_tmxm_bench(kind, seed=3), module,
                     n_faults=400, seed=9, injector=injector)
        for kind in ("Random",)
        for module in ("scheduler", "pipeline")
    ]


@pytest.fixture(scope="session")
def small_database(small_reports, small_tmxm_reports):
    """A small-but-real syndrome database distilled from campaigns."""
    return build_database(small_reports, small_tmxm_reports)


@pytest.fixture(scope="session")
def lenet_app():
    from repro.apps import LeNetApp

    return LeNetApp(batch=2, seed=0)


@pytest.fixture(scope="session")
def yolo_app():
    from repro.apps import YoloApp

    return YoloApp(batch=2, seed=0)
