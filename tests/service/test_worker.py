"""The pull-worker protocol end to end, in-process.

A coordinator daemon (``execute_jobs=False``: it only queues, leases
and merges) is driven by :class:`CampaignWorker` instances running in
threads — the same code path ``python -m repro worker`` runs, minus the
subprocess.  The invariant under test throughout: however many workers
share a job, and however many leases expire along the way, the merged
report is bit-identical to the direct synchronous run.
"""

import json
import time

import pytest

from repro.errors import ServiceError
from repro.service import (
    CampaignWorker,
    ServiceClient,
    ServiceDaemon,
)


@pytest.fixture
def daemon(tmp_path):
    with ServiceDaemon(tmp_path / "svc", port=0, poll_interval=0.05,
                       quiet=True, execute_jobs=False) as daemon:
        yield daemon


@pytest.fixture
def client(daemon):
    return ServiceClient(daemon.url, timeout=30.0)


def _direct_pvf(app="MxM", injections=20, seed=5, batch_size=5):
    from repro.apps import make_application
    from repro.swfi.campaign import run_pvf_campaign
    from repro.swfi.models import SingleBitFlip

    return run_pvf_campaign(make_application(app, seed=seed),
                            SingleBitFlip(), injections, seed=seed,
                            batch_size=batch_size)


class TestWorkerFleet:
    def test_two_workers_share_one_pvf_job_bit_identically(
            self, daemon, client):
        job = client.submit("pvf", app="MxM", injections=20, seed=5,
                            batch_size=5, units_per_claim=1)
        workers = [CampaignWorker(daemon.url, name=f"w{i}",
                                  lease_seconds=60, poll_interval=0.05)
                   for i in range(2)]
        import threading
        threads = [threading.Thread(target=w.run_forever,
                                    kwargs={"drain": True})
                   for w in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        body, _ = client.artifact(job["id"], "report")
        assert json.loads(body)["report"] == _direct_pvf().to_dict()
        # both workers actually shared the job (4 units, shard size 1)
        tallies = {w["id"]: w["jobs_claimed"] for w in client.workers()}
        assert sum(tallies.values()) == 4
        assert set(tallies) == {"w0", "w1"}

    def test_rtl_job_through_a_worker_matches_direct_run(
            self, daemon, client):
        from repro.gpu import Opcode
        from repro.rtl import make_microbenchmark, run_campaign

        job = client.submit("rtl", opcode="FADD", module="fp32",
                            range="M", faults=30, seed=3, batch_size=10)
        worker = CampaignWorker(daemon.url, name="solo",
                                lease_seconds=60, poll_interval=0.05)
        worker.run_forever(drain=True)
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        body, _ = client.artifact(job["id"], "report")
        direct = run_campaign(
            make_microbenchmark(Opcode("FADD"), "M", seed=3), "fp32",
            30, seed=3, batch_size=10)
        assert json.loads(body)["report"] == direct.to_dict()

    def test_expired_lease_is_reclaimed_and_resumed_bit_identically(
            self, daemon, client):
        job = client.submit("pvf", app="MxM", injections=20, seed=5,
                            batch_size=5, units_per_claim=2)
        # a worker claims the first shard, then "SIGKILLs": no
        # heartbeat, no delivery
        doomed = client.claim("doomed", lease_seconds=0.2)
        assert doomed["units"] == [0, 2]
        time.sleep(0.4)
        # the survivor picks up the whole job, expired shard included
        survivor = CampaignWorker(daemon.url, name="survivor",
                                  lease_seconds=60, poll_interval=0.05)
        survivor.run_forever(drain=True)
        done = client.wait(job["id"], timeout=60)
        assert done["state"] == "done"
        # the dead worker's lease is observably gone
        with pytest.raises(ServiceError, match="409"):
            client.heartbeat(job["id"], "doomed")
        body, _ = client.artifact(job["id"], "report")
        assert json.loads(body)["report"] == _direct_pvf().to_dict()

    def test_late_delivery_after_lease_loss_is_rejected(self, daemon,
                                                        client):
        client.submit("pvf", app="MxM", injections=10, seed=2,
                      batch_size=5, units_per_claim=2)
        claim = client.claim("slow", lease_seconds=0.2)
        job_id = claim["job"]["id"]
        time.sleep(0.4)
        # another worker re-claims the expired shard...
        again = client.claim("fast", lease_seconds=60)
        assert again["units"] == claim["units"]
        # ...so the slow worker's stale results must be refused
        from repro.service import run_job_units

        reports = run_job_units("pvf", claim["job"]["params"], 0, 2)
        with pytest.raises(ServiceError, match="409"):
            client.post_units(job_id, "slow", 0, reports)

    def test_cooperative_cancel_reaches_workers_via_heartbeat(
            self, daemon, client):
        submitted = client.submit("pvf", app="MxM", injections=20,
                                  seed=5, batch_size=5)
        claim = client.claim("w1", lease_seconds=60)
        job_id = claim["job"]["id"]
        client.cancel(job_id)
        beat = client.heartbeat(job_id, "w1")
        assert beat["cancel_requested"] is True
        client.release_shard(job_id, "w1", claim["units"][0])
        # with no lease left, the daemon's maintenance settles the job
        done = client.wait(job_id, timeout=30)
        assert done["state"] == "cancelled"
        assert submitted["id"] == job_id

    def test_worker_error_fails_the_job(self, daemon, client):
        client.submit("pvf", app="MxM", injections=10, seed=2,
                      batch_size=5)
        claim = client.claim("w1", lease_seconds=60)
        job_id = claim["job"]["id"]
        client.fail_job(job_id, "w1", claim["units"][0],
                        "GPU caught fire")
        job = client.job(job_id)
        assert job["state"] == "failed"
        assert "GPU caught fire" in job["error"]
        assert "w1" in job["error"]

    def test_claim_priority_order_over_http(self, daemon, client):
        client.submit("pvf", app="MxM", injections=10, seed=1,
                      batch_size=5)
        urgent = client.submit("pvf", app="MxM", injections=10, seed=2,
                               batch_size=5, priority=7)
        claim = client.claim("w1", lease_seconds=60)
        assert claim["job"]["id"] == urgent["id"]
        assert claim["job"]["priority"] == 7

    def test_claim_empty_queue_returns_none(self, client):
        assert client.claim("idle", lease_seconds=30) is None

    def test_workers_endpoint_reports_liveness(self, daemon, client):
        client.submit("pvf", app="MxM", injections=10, seed=1,
                      batch_size=5)
        client.claim("w1", lease_seconds=60)
        (row,) = client.workers()
        assert row["id"] == "w1"
        assert row["alive"] is True
        assert row["jobs_claimed"] == 1


class TestBackpressure:
    def test_saturated_queue_answers_429(self, tmp_path):
        with ServiceDaemon(tmp_path / "svc", port=0, poll_interval=5,
                           quiet=True, execute_jobs=False,
                           max_queue_depth=1) as daemon:
            client = ServiceClient(daemon.url, timeout=30)
            client.submit("pvf", app="MxM", injections=5)
            with pytest.raises(ServiceError, match="429"):
                client.submit("pvf", app="MxM", injections=5)
            health = client.health()
            assert health["queue_depth"] == 1
            assert health["max_queue_depth"] == 1

    def test_priority_must_be_an_integer(self, tmp_path):
        with ServiceDaemon(tmp_path / "svc", port=0, poll_interval=5,
                           quiet=True, execute_jobs=False) as daemon:
            client = ServiceClient(daemon.url, timeout=30)
            with pytest.raises(ServiceError, match="400"):
                client.submit("pvf", app="MxM", injections=5,
                              priority="high")
