"""Durable job store: lifecycle, atomic claiming, crash recovery."""

import threading

import pytest

from repro.errors import ServiceError
from repro.service import JobStore


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite3")


class TestSubmitAndLookup:
    def test_submit_roundtrip(self, store):
        job = store.submit("pvf", {"app": "MxM", "injections": 5})
        assert job.id == 1
        assert job.state == "queued"
        assert job.attempts == 0
        fetched = store.get(job.id)
        assert fetched.params == {"app": "MxM", "injections": 5}
        assert fetched.submitted_at > 0

    def test_get_unknown_raises(self, store):
        with pytest.raises(ServiceError, match="no such job"):
            store.get(99)

    def test_list_filters_by_state(self, store):
        store.submit("pvf", {})
        running = store.claim_next()
        store.submit("rtl", {})
        assert [j.kind for j in store.list_jobs()] == ["pvf", "rtl"]
        assert [j.id for j in store.list_jobs("queued")] == [2]
        assert [j.id for j in store.list_jobs("running")] == [running.id]

    def test_list_rejects_unknown_state(self, store):
        with pytest.raises(ServiceError, match="unknown job state"):
            store.list_jobs("paused")

    def test_persists_across_reopen(self, store, tmp_path):
        store.submit("pvf", {"seed": 3})
        reopened = JobStore(tmp_path / "jobs.sqlite3")
        assert reopened.get(1).params == {"seed": 3}

    def test_to_dict_is_json_ready(self, store):
        payload = store.submit("pvf", {"seed": 1}).to_dict()
        assert payload["state"] == "queued"
        assert payload["result"] is None
        assert payload["cancel_requested"] is False


class TestClaiming:
    def test_claims_oldest_queued_first(self, store):
        store.submit("pvf", {})
        store.submit("rtl", {})
        first = store.claim_next()
        second = store.claim_next()
        assert (first.id, second.id) == (1, 2)
        assert first.state == "running"
        assert first.attempts == 1
        assert first.started_at is not None

    def test_claim_empty_queue_returns_none(self, store):
        assert store.claim_next() is None

    def test_concurrent_claims_never_share_a_job(self, store):
        for _ in range(12):
            store.submit("pvf", {})
        claimed, lock = [], threading.Lock()

        def worker():
            while True:
                job = store.claim_next()
                if job is None:
                    return
                with lock:
                    claimed.append(job.id)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == list(range(1, 13))  # each exactly once


class TestFinish:
    def test_finish_stores_result(self, store):
        store.submit("pvf", {})
        store.claim_next()
        done = store.finish(1, "done", result={"pvf": 0.5})
        assert done.state == "done"
        assert done.result == {"pvf": 0.5}
        assert done.finished_at is not None

    def test_finish_stores_error(self, store):
        store.submit("pvf", {})
        store.claim_next()
        failed = store.finish(1, "failed", error="boom")
        assert failed.state == "failed"
        assert failed.error == "boom"

    def test_finish_requires_terminal_state(self, store):
        store.submit("pvf", {})
        with pytest.raises(ServiceError, match="terminal state"):
            store.finish(1, "queued")


class TestRecovery:
    def test_recover_requeues_running_jobs(self, store):
        store.submit("pvf", {})
        store.submit("pvf", {})
        store.claim_next()
        recovered = store.recover()
        assert [j.id for j in recovered] == [1]
        job = store.get(1)
        assert job.state == "queued"
        assert job.started_at is None
        assert job.attempts == 1  # the interrupted attempt still counts
        assert store.get(2).state == "queued"  # untouched

    def test_recover_honours_pending_cancellation(self, store):
        store.submit("pvf", {})
        store.claim_next()
        store.request_cancel(1)
        (job,) = store.recover()
        assert job.state == "cancelled"
        assert "daemon was down" in job.error

    def test_recover_with_nothing_running_is_a_noop(self, store):
        store.submit("pvf", {})
        assert store.recover() == []


class TestCancellation:
    def test_cancel_queued_is_immediate(self, store):
        store.submit("pvf", {})
        job = store.request_cancel(1)
        assert job.state == "cancelled"
        assert job.error == "cancelled before start"

    def test_cancel_running_only_sets_the_flag(self, store):
        store.submit("pvf", {})
        store.claim_next()
        job = store.request_cancel(1)
        assert job.state == "running"  # executor stops cooperatively
        assert job.cancel_requested is True
        assert store.cancel_requested(1) is True

    def test_cancel_terminal_raises(self, store):
        store.submit("pvf", {})
        store.claim_next()
        store.finish(1, "done")
        with pytest.raises(ServiceError, match="already done"):
            store.request_cancel(1)

    def test_requeue_resets_cancelled_job(self, store):
        store.submit("pvf", {})
        store.request_cancel(1)
        job = store.requeue(1)
        assert job.state == "queued"
        assert job.cancel_requested is False
        assert job.error is None

    def test_requeue_rejects_active_jobs(self, store):
        store.submit("pvf", {})
        with pytest.raises(ServiceError, match="only failed/cancelled"):
            store.requeue(1)
