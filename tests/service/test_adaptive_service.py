"""Adaptive campaigns through the service: params, shards, patterns.

The moving-horizon protocol under test: an adaptive job's shard table
starts at the warm-up horizon; when the last planned shard lands the
daemon replays the journal through :func:`next_horizon`, extends the
table, and the job keeps running until the replayed decision is
"stop".  The merged result must be bit-identical to the in-process
adaptive runner — same report bytes, same per-cell decision record,
same round count.
"""

import json
import time

import pytest

from repro.adaptive import AdaptiveConfig, run_adaptive_pvf_campaign
from repro.apps import make_application
from repro.artifacts import load_artifact
from repro.errors import ServiceError
from repro.service import (
    CampaignWorker,
    JobStore,
    ServiceClient,
    ServiceDaemon,
    normalize_params,
)
from repro.swfi.models import SingleBitFlip


class TestAdaptiveParams:
    def test_adaptive_trio_passes_through(self):
        params = normalize_params("pvf", {
            "app": "MxM", "target_ci": 0.1, "strategy": "uniform",
            "min_per_cell": 50})
        assert params["target_ci"] == 0.1
        assert params["strategy"] == "uniform"
        assert params["min_per_cell"] == 50

    def test_fixed_size_jobs_default_to_none(self):
        params = normalize_params("pvf", {"app": "MxM"})
        assert params["target_ci"] is None
        assert params["strategy"] is None
        assert params["min_per_cell"] is None

    @pytest.mark.parametrize("target_ci", [0.0, 1.0, 1.5, -0.5, "tight"])
    def test_target_ci_must_be_a_fraction(self, target_ci):
        with pytest.raises(ServiceError, match="target_ci"):
            normalize_params("pvf", {"app": "MxM",
                                     "target_ci": target_ci})

    def test_strategy_requires_target_ci(self):
        with pytest.raises(ServiceError, match="target_ci"):
            normalize_params("pvf", {"app": "MxM",
                                     "strategy": "uniform"})

    def test_min_per_cell_requires_target_ci(self):
        with pytest.raises(ServiceError, match="target_ci"):
            normalize_params("pvf", {"app": "MxM", "min_per_cell": 10})

    def test_bad_strategy_and_min_per_cell_rejected(self):
        with pytest.raises(ServiceError, match="strategy"):
            normalize_params("pvf", {"app": "MxM", "target_ci": 0.1,
                                     "strategy": "greedy"})
        with pytest.raises(ServiceError, match="min_per_cell"):
            normalize_params("pvf", {"app": "MxM", "target_ci": 0.1,
                                     "min_per_cell": 0})

    def test_adaptive_rtl_gets_a_finite_batch_size(self):
        # a fixed rtl job defaults to one whole-campaign unit, which
        # leaves an adaptive controller nothing to decide between
        fixed = normalize_params("rtl", {"opcode": "FADD"})
        assert fixed["batch_size"] is None
        adaptive = normalize_params("rtl", {"opcode": "FADD",
                                            "target_ci": 0.1})
        assert adaptive["batch_size"] == 50
        explicit = normalize_params("rtl", {"opcode": "FADD",
                                            "target_ci": 0.1,
                                            "batch_size": 10})
        assert explicit["batch_size"] == 10


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite3")


def _plan(total, per_claim):
    def plan(job):
        return total, per_claim
    return plan


class TestClaimSplitting:
    def test_wide_shard_is_split_at_max_units(self, store):
        job = store.submit("pvf", {"app": "MxM"})
        _, (lo, hi) = store.claim_shard("w1", 30.0, _plan(8, 4),
                                        max_units=1)
        assert (lo, hi) == (0, 1)
        # the remainder was re-queued, not lost: the next claim gets it
        _, (lo, hi) = store.claim_shard("w2", 30.0, _plan(8, 4),
                                        max_units=2)
        assert (lo, hi) == (1, 3)
        # the shard table still tiles [0, 8) exactly once
        spans = sorted((s["lo"], s["hi"]) for s in store.shards(job.id))
        assert spans[0][0] == 0 and spans[-1][1] == 8
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))

    def test_narrow_shard_is_untouched(self, store):
        store.submit("pvf", {"app": "MxM"})
        _, (lo, hi) = store.claim_shard("w1", 30.0, _plan(8, 4),
                                        max_units=4)
        assert (lo, hi) == (0, 4)

    def test_extend_shards_appends_only_the_new_tail(self, store):
        job = store.submit("pvf", {"app": "MxM"})
        store.claim_shard("w1", 30.0, _plan(4, 2))  # shards [0,2) [2,4)
        assert store.extend_shards(job.id, 8, 2) == 2
        spans = sorted((s["lo"], s["hi"]) for s in store.shards(job.id))
        assert spans == [(0, 2), (2, 4), (4, 6), (6, 8)]
        # idempotent: an already-covered horizon adds nothing
        assert store.extend_shards(job.id, 8, 2) == 0


class TestWorkerPacing:
    def _worker(self, **kwargs):
        kwargs.setdefault("lease_seconds", 30.0)
        return CampaignWorker("http://127.0.0.1:9", name="pace",
                              poll_interval=0.01, **kwargs)

    def test_no_cap_before_first_delivery(self):
        assert self._worker().target_units() is None

    def test_slow_units_shrink_the_claim(self):
        worker = self._worker()
        worker.target_units()
        worker._observe_units(5, 10.0)  # 2 s/unit
        assert worker.target_units() == 15
        worker._observe_units(1, 60.0)  # one awful unit: EMA -> 31 s
        assert worker.target_units() == 1

    def test_fast_units_widen_the_claim_back(self):
        worker = self._worker()
        worker._observe_units(1, 60.0)
        assert worker.target_units() == 1
        for _ in range(10):
            worker._observe_units(10, 1.0)  # 0.1 s/unit
        assert worker.target_units() > 50

    def test_claim_seconds_decouples_from_the_lease(self):
        worker = self._worker(claim_seconds=5.0)
        worker._observe_units(1, 1.0)
        assert worker.target_units() == 5

    def test_degenerate_observations_are_ignored(self):
        worker = self._worker()
        worker._observe_units(0, 1.0)
        worker._observe_units(5, 0.0)
        assert worker.target_units() is None


@pytest.fixture
def daemon(tmp_path):
    with ServiceDaemon(tmp_path / "svc", port=0, poll_interval=0.05,
                       quiet=True, execute_jobs=False) as daemon:
        yield daemon


@pytest.fixture
def client(daemon):
    return ServiceClient(daemon.url, timeout=30.0)


def _drain_to_terminal(daemon, client, job_id, timeout=120.0):
    """Drain a worker until *job_id* settles.

    A drain exits when the claim queue runs dry — but an adaptive
    finalize may extend the shard table right afterwards, so the worker
    loops until the job actually reaches a terminal state.
    """
    worker = CampaignWorker(daemon.url, name="w0", lease_seconds=60,
                            poll_interval=0.05)
    deadline = time.monotonic() + timeout
    while True:
        worker.run_forever(drain=True)
        state = client.job(job_id)["state"]
        if state in ("done", "failed", "cancelled"):
            return state
        assert time.monotonic() < deadline, \
            f"job {job_id} stuck in {state}"
        time.sleep(0.1)


class TestAdaptiveJobs:
    def test_sharded_pvf_job_matches_in_process_adaptive_run(
            self, daemon, client):
        job = client.submit("pvf", app="MxM", injections=200, seed=9,
                            batch_size=5, target_ci=0.1,
                            min_per_cell=20, units_per_claim=2)
        assert _drain_to_terminal(daemon, client, job["id"]) == "done"

        payload = json.loads(client.artifact(job["id"], "report")[0])
        direct = run_adaptive_pvf_campaign(
            make_application("MxM", seed=9), SingleBitFlip(), 200,
            AdaptiveConfig(target_ci=0.1, min_per_cell=20), seed=9,
            batch_size=5)
        assert direct.rounds >= 2  # the horizon must actually move
        assert payload["report"] == direct.report.to_dict()
        assert payload["adaptive"]["rounds"] == direct.rounds
        assert payload["adaptive"]["converged"] == direct.converged
        assert payload["adaptive"]["cells"] == direct.summary

    def test_patterns_artifact_for_an_rtl_job(self, daemon, client):
        job = client.submit("rtl", opcode="FADD", module="fp32",
                            range="M", faults=30, seed=3,
                            batch_size=10)
        assert _drain_to_terminal(daemon, client, job["id"]) == "done"

        from repro.analytics import mine_patterns

        report_payload = json.loads(
            client.artifact(job["id"], "report")[0])
        report = load_artifact("rtl-report", report_payload["report"])
        body, etag = client.artifact(job["id"], "patterns")
        mined = load_artifact("pattern-report", json.loads(body))
        assert mined == mine_patterns(report)
        assert mined.source == "rtl"
        # the artifact is cached and revalidates by ETag
        body2, etag2 = client.artifact(job["id"], "patterns", etag=etag)
        assert body2 is None and etag2 == etag

    def test_patterns_artifact_for_a_pvf_job(self, daemon, client):
        job = client.submit("pvf", app="MxM", injections=20, seed=5,
                            batch_size=5)
        assert _drain_to_terminal(daemon, client, job["id"]) == "done"
        body, _ = client.artifact(job["id"], "patterns")
        mined = load_artifact("pattern-report", json.loads(body))
        assert mined.source == "pvf"
        assert mined.spatial is None and mined.temporal is None
        assert mined.n_injections == 20

    def test_claim_rejects_bad_max_units(self, daemon, client):
        for bad in (0, -1, "two", True):
            with pytest.raises(ServiceError, match="max_units"):
                client.claim("w0", 30.0, max_units=bad)
