"""Fault-model job plumbing: stuck-at/burst rtl jobs through the service."""

import json

import pytest

from repro.errors import ServiceError
from repro.service import ServiceClient, ServiceDaemon
from repro.service.scheduler import normalize_params


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("faultmodel-service")
    with ServiceDaemon(workdir, port=0, poll_interval=0.05,
                       quiet=True) as daemon:
        yield daemon


@pytest.fixture(scope="module")
def client(daemon):
    return ServiceClient(daemon.url, timeout=30.0)


class TestNormalizeParams:
    def test_default_is_transient(self):
        params = normalize_params("rtl", {"module": "fp32", "faults": 5})
        assert params["fault_model"] == "transient"
        assert params["apps"] is None

    def test_stuck_at_accepted_without_explicit_suite(self):
        # apps stays None: run_signature_campaign resolves the module's
        # default suite at execution time
        params = normalize_params(
            "rtl", {"module": "sfu_controller", "faults": 5,
                    "fault_model": "stuck-at"})
        assert params["fault_model"] == "stuck-at"
        assert params["apps"] is None

    def test_unknown_model_rejected(self):
        with pytest.raises(ServiceError, match="unknown fault model"):
            normalize_params("rtl", {"module": "fp32", "faults": 5,
                                     "fault_model": "cosmic"})

    def test_apps_only_valid_for_stuck_at(self):
        with pytest.raises(ServiceError, match="apps"):
            normalize_params("rtl", {"module": "fp32", "faults": 5,
                                     "apps": ["FADD/M"]})

    def test_bad_app_spec_rejected(self):
        with pytest.raises(ServiceError):
            normalize_params(
                "rtl", {"module": "sfu_controller", "faults": 5,
                        "fault_model": "stuck-at", "apps": ["BOGUS/M"]})

    def test_stuck_at_incompatible_with_adaptive(self):
        with pytest.raises(ServiceError, match="target_ci"):
            normalize_params(
                "rtl", {"module": "sfu_controller", "faults": 5,
                        "fault_model": "stuck-at", "target_ci": 0.05})

    def test_burst_params_validated(self):
        with pytest.raises(ServiceError, match="burst_width"):
            normalize_params("rtl", {"module": "fp32", "faults": 5,
                                     "fault_model": "burst",
                                     "burst_width": 0})

    def test_burst_params_only_for_burst(self):
        with pytest.raises(ServiceError, match="burst"):
            normalize_params("rtl", {"module": "fp32", "faults": 5,
                                     "burst_width": 3})


class TestStuckAtJobOverHttp:
    def test_signature_artifact_served(self, daemon, client):
        from repro.rtl import run_signature_campaign

        job = client.submit("rtl", module="sfu_controller", faults=3,
                            seed=4, fault_model="stuck-at")
        done = client.wait(job["id"], timeout=240)
        assert done["state"] == "done"
        result = done["result"]
        assert result["fault_model"] == "stuck-at"
        assert result["module"] == "sfu_controller"
        assert set(result["per_app"]) == set(result["apps"])

        body, _etag = client.artifact(job["id"], "signature")
        envelope = json.loads(body)
        assert envelope["kind"] == "signature-report"
        direct = run_signature_campaign("sfu_controller", 3, seed=4)
        from repro.artifacts import load_artifact

        served = load_artifact("signature-report", envelope)
        assert served.to_dict() == direct.to_dict()

    def test_report_artifact_announces_signature_schema(self, daemon,
                                                        client):
        from urllib.request import urlopen

        job = client.submit("rtl", module="sfu_controller", faults=2,
                            seed=1, fault_model="stuck-at")
        client.wait(job["id"], timeout=240)
        with urlopen(f"{daemon.url}/artifacts/{job['id']}/report",
                     timeout=30) as response:
            assert (response.headers["X-Artifact-Schema"]
                    == "signature-report")
            assert response.headers["X-Artifact-Version"] == "1"


class TestBurstJobOverHttp:
    def test_burst_job_matches_direct_campaign(self, daemon, client):
        from repro.rtl import make_microbenchmark, run_campaign
        from repro.gpu import Opcode

        job = client.submit("rtl", opcode="FADD", module="fp32",
                            faults=20, seed=9, fault_model="burst",
                            burst_width=3, burst_window=2)
        done = client.wait(job["id"], timeout=240)
        assert done["state"] == "done"
        assert done["result"]["fault_model"] == "burst"

        bench = make_microbenchmark(Opcode.FADD, "M", seed=9)
        direct = run_campaign(bench, "fp32", 20, seed=9,
                              fault_model="burst", burst_width=3,
                              burst_window=2)
        body, _etag = client.artifact(job["id"], "report")
        assert json.loads(body)["report"] == direct.to_dict()

    def test_transient_job_result_shape_unchanged(self, daemon, client):
        # no fault_model key leaks into pre-refactor result payloads
        job = client.submit("rtl", opcode="FADD", module="fp32",
                            faults=5, seed=2)
        done = client.wait(job["id"], timeout=240)
        assert done["state"] == "done"
        assert "fault_model" not in done["result"]
