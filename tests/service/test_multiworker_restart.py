"""The multi-worker acceptance test: SIGKILL a worker mid-campaign.

A coordinator daemon (``--no-scheduler``: it only queues, leases and
merges) and two real ``python -m repro worker`` subprocesses share one
sharded PVF job.  One worker is SIGKILLed while it holds a shard lease;
the lease expires, the daemon re-queues the shard, the survivor
executes it, and the merged report must be byte-for-byte identical to
the direct synchronous run.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient

pytestmark = pytest.mark.slow

LEASE_SECONDS = 4.0


def _spawn_daemon(workdir: Path) -> "tuple[subprocess.Popen, str]":
    (workdir / "service.json").unlink(missing_ok=True)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workdir",
         str(workdir), "--port", "0", "--quiet", "--no-scheduler",
         "--poll-interval", "0.2"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if (workdir / "service.json").exists():
            try:
                payload = json.loads(
                    (workdir / "service.json").read_text())
                return process, payload["url"]
            except (json.JSONDecodeError, KeyError):
                pass  # written halfway; retry
        if process.poll() is not None:
            raise RuntimeError("daemon died during startup")
        time.sleep(0.1)
    process.kill()
    raise RuntimeError("daemon never wrote service.json")


def _spawn_worker(url: str, name: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--url", url,
         "--name", name, "--lease", str(LEASE_SECONDS),
         "--poll", "0.1"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def test_sigkill_worker_mid_campaign_merges_bit_identical(tmp_path):
    from repro.apps import make_application
    from repro.swfi.campaign import run_pvf_campaign
    from repro.swfi.models import SingleBitFlip

    workdir = tmp_path / "service"
    workdir.mkdir()
    daemon, url = _spawn_daemon(workdir)
    workers = {}
    try:
        client = ServiceClient(url, timeout=30)
        job = client.submit("pvf", app="MxM", injections=400, seed=11,
                            batch_size=20, units_per_claim=2)
        workers["w-dead"] = _spawn_worker(url, "w-dead")
        workers["w-live"] = _spawn_worker(url, "w-live")

        # wait until the doomed worker holds a shard lease, then
        # SIGKILL it mid-shard: no release, no heartbeat, no delivery
        held = None
        deadline = time.monotonic() + 90
        while time.monotonic() < deadline:
            shards = client.job(job["id"]).get("shards", [])
            held = next((s for s in shards
                         if s["state"] == "leased"
                         and s["worker"] == "w-dead"), None)
            if held is not None:
                break
            time.sleep(0.05)
        else:
            pytest.fail("w-dead never leased a shard")
        workers["w-dead"].send_signal(signal.SIGKILL)
        workers["w-dead"].wait(timeout=30)

        # the survivor inherits the expired lease and finishes the job
        done = client.wait(job["id"], timeout=300, poll=0.2)
        assert done["state"] == "done"
        assert done["result"]["n_injections"] == 400

        # the killed worker's shard was observably re-claimed: every
        # shard is done, and the dead worker had really claimed work
        shards = client.job(job["id"])["shards"]
        assert all(s["state"] == "done" for s in shards)
        tallies = {w["id"]: w for w in client.workers()}
        assert tallies["w-dead"]["jobs_claimed"] >= 1
        assert tallies["w-live"]["units_done"] >= 1

        body, _ = client.artifact(job["id"], "report")
        direct = run_pvf_campaign(
            make_application("MxM", seed=11), SingleBitFlip(), 400,
            seed=11, batch_size=20)
        assert json.loads(body)["report"] == direct.to_dict()
    finally:
        for process in workers.values():
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)
