"""Job validation and execution: budgets, cancellation, resume, parity."""

import json

import pytest

from repro.errors import CampaignCancelled, ServiceError
from repro.service import JobStore, Scheduler, execute_job, normalize_params


class TestNormalizeParams:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown job kind"):
            normalize_params("fuzz", {})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ServiceError, match="unknown parameter"):
            normalize_params("pvf", {"app": "MxM", "warp": 3})

    def test_pvf_defaults_and_canonical_app(self):
        params = normalize_params("pvf", {"app": "mxm"})
        assert params["app"] == "MxM"  # case-insensitive lookup
        assert params["model"] == "bitflip"
        assert params["injections"] == 300
        assert params["seed"] == 0
        assert params["jobs"] == 1
        assert params["budget"] is None

    def test_pvf_rejects_unknown_app_and_model(self):
        with pytest.raises(ServiceError, match="unknown application"):
            normalize_params("pvf", {"app": "nosuch"})
        with pytest.raises(ServiceError, match="unknown fault model"):
            normalize_params("pvf", {"app": "MxM", "model": "gamma"})

    def test_rtl_uppercases_opcode_and_range(self):
        params = normalize_params("rtl", {"opcode": "fadd", "range": "l"})
        assert params["opcode"] == "FADD"
        assert params["range"] == "L"
        assert params["module"] == "fp32"
        assert params["faults"] == 500

    def test_rtl_rejects_bad_opcode_module_range(self):
        with pytest.raises(ServiceError, match="unknown opcode"):
            normalize_params("rtl", {"opcode": "FNORD"})
        with pytest.raises(ServiceError, match="unknown module"):
            normalize_params("rtl", {"module": "fp128"})
        with pytest.raises(ServiceError, match="unknown input range"):
            normalize_params("rtl", {"range": "XL"})

    def test_pipeline_defaults(self):
        params = normalize_params("pipeline", {"apps": ["mxm", "lava"]})
        assert params["apps"] == ["MxM", "Lava"]
        assert params["models"] == ["bitflip", "syndrome"]
        assert params["opcodes"] is None
        assert params["grid_faults"] == 200

    def test_pipeline_rejects_empty_lists(self):
        with pytest.raises(ServiceError, match="non-empty list"):
            normalize_params("pipeline", {"apps": []})
        with pytest.raises(ServiceError, match="non-empty list"):
            normalize_params("pipeline", {"models": []})

    def test_type_checks(self):
        with pytest.raises(ServiceError, match="must be an integer"):
            normalize_params("pvf", {"app": "MxM", "injections": "many"})
        with pytest.raises(ServiceError, match="must be a number"):
            normalize_params("pvf", {"app": "MxM", "budget": "later"})
        with pytest.raises(ServiceError, match="must be positive"):
            normalize_params("pvf", {"app": "MxM", "budget": -1})
        with pytest.raises(ServiceError, match=">= 1"):
            normalize_params("pvf", {"app": "MxM", "jobs": 0})


def _submit_and_claim(store, kind, params):
    store.submit(kind, normalize_params(kind, params))
    return store.claim_next()


class TestExecuteJob:
    def test_pvf_job_writes_report_and_metrics(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        job = _submit_and_claim(store, "pvf", {
            "app": "MxM", "injections": 20, "seed": 7, "batch_size": 10})
        jobdir = tmp_path / "jobs" / "1"
        result = execute_job(job, jobdir, store=store)
        assert result["kind"] == "pvf"
        assert result["n_injections"] == 20
        assert 0.0 <= result["pvf"] <= 1.0
        report = json.loads((jobdir / "report.json").read_text())
        assert report == result
        metrics = json.loads((jobdir / "metrics.json").read_text())
        assert metrics["kind"] == "campaign-metrics"
        assert metrics["units_done"] == 2

    def test_result_bit_identical_to_direct_run(self, tmp_path):
        from repro.apps import make_application
        from repro.swfi.campaign import run_pvf_campaign
        from repro.swfi.models import SingleBitFlip

        store = JobStore(tmp_path / "jobs.sqlite3")
        job = _submit_and_claim(store, "pvf", {
            "app": "MxM", "injections": 30, "seed": 5, "batch_size": 10})
        result = execute_job(job, tmp_path / "jobs" / "1", store=store)
        direct = run_pvf_campaign(
            make_application("MxM", seed=5), SingleBitFlip(), 30,
            seed=5, batch_size=10)
        assert result["report"] == direct.to_dict()

    def test_rtl_job_runs(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        job = _submit_and_claim(store, "rtl", {
            "opcode": "FADD", "faults": 30, "seed": 3, "batch_size": 15})
        result = execute_job(job, tmp_path / "jobs" / "1", store=store)
        assert result["kind"] == "rtl"
        assert result["n_faults"] == 30
        assert result["n_masked"] + result["n_sdc"] + result["n_due"] == 30

    def test_budget_exceeded_fails_with_requeue_hint(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        job = _submit_and_claim(store, "pvf", {
            "app": "MxM", "injections": 40, "seed": 1, "batch_size": 10,
            "budget": 1e-9})
        with pytest.raises(ServiceError, match="wall-clock budget"):
            execute_job(job, tmp_path / "jobs" / "1", store=store)

    def test_cancel_requested_stops_between_units(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        job = _submit_and_claim(store, "pvf", {
            "app": "MxM", "injections": 40, "seed": 1, "batch_size": 10})
        store.request_cancel(job.id)
        with pytest.raises(CampaignCancelled):
            execute_job(job, tmp_path / "jobs" / "1", store=store)

    def test_cancel_mid_run_then_resume_is_bit_identical(
            self, tmp_path, monkeypatch):
        from repro.apps import make_application
        from repro.service import scheduler as scheduler_module
        from repro.swfi.campaign import run_pvf_campaign
        from repro.swfi.models import SingleBitFlip

        monkeypatch.setattr(scheduler_module, "_CANCEL_POLL_SECONDS", 0.0)
        store = JobStore(tmp_path / "jobs.sqlite3")
        job = _submit_and_claim(store, "pvf", {
            "app": "MxM", "injections": 30, "seed": 5, "batch_size": 10})
        jobdir = tmp_path / "jobs" / "1"

        class FlipStore:
            """Allows the first poll through, cancels on the second."""

            polls = 0

            def cancel_requested(self, job_id):
                self.polls += 1
                return self.polls > 1

        with pytest.raises(CampaignCancelled):
            execute_job(job, jobdir, store=FlipStore())
        journal = (jobdir / "pvf.jsonl").read_text().splitlines()
        assert 1 <= len(journal) - 1 < 3  # header + partial units

        result = execute_job(job, jobdir, store=store)  # resumes
        direct = run_pvf_campaign(
            make_application("MxM", seed=5), SingleBitFlip(), 30,
            seed=5, batch_size=10)
        assert result["report"] == direct.to_dict()


class TestSchedulerLifecycle:
    def test_run_once_full_lifecycle(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        scheduler = Scheduler(store, tmp_path)
        store.submit("pvf", normalize_params("pvf", {
            "app": "MxM", "injections": 10, "seed": 2}))
        job = scheduler.run_once()
        assert job.state == "done"
        assert job.result["n_injections"] == 10
        assert (scheduler.jobdir(job.id) / "report.json").exists()

    def test_run_once_empty_queue_returns_none(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        assert Scheduler(store, tmp_path).run_once() is None

    def test_budget_failure_then_requeue_completes(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        scheduler = Scheduler(store, tmp_path)
        store.submit("pvf", normalize_params("pvf", {
            "app": "MxM", "injections": 20, "seed": 4, "batch_size": 10,
            "budget": 1e-9}))
        job = scheduler.run_once()
        assert job.state == "failed"
        assert "wall-clock budget" in job.error

        # lift the budget and requeue: the journal makes it resume
        params = dict(job.params, budget=None)
        with store._connect() as conn:
            conn.execute("UPDATE jobs SET params = ? WHERE id = ?",
                         (json.dumps(params), job.id))
        store.requeue(job.id)
        job = scheduler.run_once()
        assert job.state == "done"
        assert job.attempts == 2

    def test_cancelled_job_lands_in_cancelled(self, tmp_path, monkeypatch):
        from repro.service import scheduler as scheduler_module

        store = JobStore(tmp_path / "jobs.sqlite3")
        scheduler = Scheduler(store, tmp_path)
        store.submit("pvf", normalize_params("pvf", {"app": "MxM"}))

        def fake_execute(job, jobdir, store=None, quiet=True):
            raise CampaignCancelled("stopped for the test")

        monkeypatch.setattr(scheduler_module, "execute_job", fake_execute)
        job = scheduler.run_once()
        assert job.state == "cancelled"
        assert "stopped for the test" in job.error

    def test_unexpected_failure_records_traceback(self, tmp_path,
                                                  monkeypatch):
        from repro.service import scheduler as scheduler_module

        store = JobStore(tmp_path / "jobs.sqlite3")
        scheduler = Scheduler(store, tmp_path)
        store.submit("pvf", normalize_params("pvf", {"app": "MxM"}))

        def fake_execute(job, jobdir, store=None, quiet=True):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr(scheduler_module, "execute_job", fake_execute)
        job = scheduler.run_once()
        assert job.state == "failed"
        assert "RuntimeError: worker exploded" in job.error

    def test_recover_requeues_interrupted_job(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        store.submit("pvf", normalize_params("pvf", {
            "app": "MxM", "injections": 10, "seed": 2}))
        store.claim_next()  # daemon "dies" here
        scheduler = Scheduler(store, tmp_path)
        recovered = scheduler.recover()
        assert [j.state for j in recovered] == ["queued"]
        job = scheduler.run_once()
        assert job.state == "done"
        assert job.attempts == 2
