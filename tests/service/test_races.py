"""Regression tests for the service race/robustness fixes.

Each class pins one bug:

* ``TestCancelFinishRace`` — ``request_cancel`` checked the terminal
  state outside its transaction, so a job finishing concurrently could
  be stamped ``cancel_requested`` after the fact (silent no-op instead
  of a 409).
* ``TestSchedulerSurvivesStoreErrors`` — a transient
  ``sqlite3.OperationalError`` (WAL lock contention) killed the
  scheduler thread; the daemon kept serving HTTP but never ran another
  job.
* ``TestBudgetClassification`` — budget exhaustion surfaced as
  ``CampaignCancelled`` and landed jobs in ``cancelled`` instead of
  ``failed``.
* ``TestTornTelemetry`` — a half-written ``metrics.json`` 500'd
  ``GET /jobs/<id>``; writes now go through ``os.replace`` and reads
  degrade to "no telemetry".
* ``TestHealthStaysCheap`` — ``/health`` loaded every job row (params
  and result blobs included) just to count states.
"""

import json
import sqlite3
import threading
import time

import pytest

from repro.errors import BudgetExceeded, ServiceError
from repro.service import (
    CampaignService,
    JobStore,
    Scheduler,
    ServiceDaemon,
)


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite3")


class TestCancelFinishRace:
    def test_cancel_after_finish_raises(self, store):
        store.submit("pvf", {})
        job = store.claim_next()
        store.finish(job.id, "done", result={})
        with pytest.raises(ServiceError, match="already done"):
            store.request_cancel(job.id)
        assert store.get(job.id).cancel_requested is False

    def test_finish_after_finish_raises(self, store):
        store.submit("pvf", {})
        job = store.claim_next()
        store.finish(job.id, "done", result={})
        with pytest.raises(ServiceError, match="already done"):
            store.finish(job.id, "cancelled")

    def test_cancel_losing_the_race_to_finish_gets_refused(self, store):
        """Force the exact TOCTOU interleaving and demand the 409.

        The job finishes (via a second connection) in the instant
        between ``request_cancel`` being called and its write
        transaction starting.  Pre-fix, the terminal-state check had
        already passed outside the transaction, so the flag was
        silently stamped onto the done row; post-fix the check runs
        inside ``BEGIN IMMEDIATE`` and refuses.
        """
        from contextlib import contextmanager

        rival = JobStore(store.path)
        store.submit("pvf", {})
        job = store.claim_next()
        real_connect = store._connect

        class FinishOnBegin:
            def __init__(self, conn):
                self._conn = conn

            def execute(self, sql, *args):
                if sql.startswith("BEGIN"):
                    store._connect = real_connect  # fire once
                    rival.finish(job.id, "done", result={})
                return self._conn.execute(sql, *args)

            def __getattr__(self, name):
                return getattr(self._conn, name)

        @contextmanager
        def racing_connect():
            with real_connect() as conn:
                yield FinishOnBegin(conn)

        store._connect = racing_connect
        with pytest.raises(ServiceError, match="already done"):
            store.request_cancel(job.id)
        fresh = store.get(job.id)
        assert fresh.state == "done"
        assert fresh.cancel_requested is False

    def test_threaded_cancel_vs_finish_always_gives_a_definite_answer(
            self, store):
        """Under a live race, every refused cancel names a settled job.

        A refusal must mean the job really was terminal and unflagged —
        never a silent no-op that leaves the caller believing the
        cancellation took.
        """
        jobs = []
        for _ in range(24):
            store.submit("pvf", {})
            jobs.append(store.claim_next().id)
        barrier = threading.Barrier(2)
        refused, lock = [], threading.Lock()

        def finisher():
            barrier.wait()
            for job_id in jobs:
                try:
                    store.finish(job_id, "done", result={})
                except ServiceError:
                    pass  # the cancel side settled it first

        def canceller():
            barrier.wait()
            for job_id in jobs:
                try:
                    store.request_cancel(job_id)
                except ServiceError:
                    with lock:
                        refused.append(job_id)

        threads = [threading.Thread(target=finisher),
                   threading.Thread(target=canceller)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for job_id in refused:
            job = store.get(job_id)
            assert job.state == "done"
            assert job.cancel_requested is False


class TestSchedulerSurvivesStoreErrors:
    def test_run_forever_outlives_transient_lock_errors(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        scheduler = Scheduler(store, tmp_path, poll_interval=0.01,
                              quiet=True)
        real_maintain = scheduler.maintain
        calls = {"failures": 0}

        def flaky_maintain():
            if calls["failures"] < 3:
                calls["failures"] += 1
                raise sqlite3.OperationalError("database is locked")
            real_maintain()

        scheduler.maintain = flaky_maintain
        store.submit("pvf", {**_tiny_pvf_params(), "injections": 4,
                             "batch_size": 2})
        stop = threading.Event()
        thread = threading.Thread(target=scheduler.run_forever,
                                  args=(stop,), daemon=True)
        thread.start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if store.get(1).state == "done":
                    break
                time.sleep(0.05)
            else:
                pytest.fail("scheduler never recovered from the "
                            "transient store error")
        finally:
            stop.set()
            thread.join(timeout=10)
        assert calls["failures"] == 3
        assert store.get(1).state == "done"


def _tiny_pvf_params() -> dict:
    from repro.service import normalize_params

    return normalize_params("pvf", {"app": "MxM", "injections": 6,
                                    "batch_size": 3, "seed": 1})


class TestBudgetClassification:
    def test_budget_exceeded_is_a_service_error(self):
        assert issubclass(BudgetExceeded, ServiceError)

    def test_blown_budget_lands_failed_not_cancelled(self, store,
                                                     tmp_path):
        from repro.service import normalize_params

        params = normalize_params(
            "pvf", {"app": "MxM", "injections": 40, "batch_size": 2,
                    "budget": 1e-6})
        store.submit("pvf", params)
        scheduler = Scheduler(store, tmp_path, quiet=True)
        job = scheduler.run_once()
        assert job.state == "failed"
        assert "budget" in job.error
        assert "requeue" in job.error

    def test_user_cancel_still_raises_cancelled_not_budget(self, store,
                                                           tmp_path):
        from repro.errors import CampaignCancelled
        from repro.service import execute_job

        store.submit("pvf", _tiny_pvf_params())
        running = store.claim_next()
        store.request_cancel(running.id)  # stops at the first unit
        scheduler = Scheduler(store, tmp_path, quiet=True)
        with pytest.raises(CampaignCancelled):
            execute_job(running, scheduler.jobdir(running.id),
                        store=store)


class TestTornTelemetry:
    def test_metrics_save_is_atomic(self, tmp_path):
        from repro.campaign.telemetry import CampaignMetrics

        metrics = CampaignMetrics("stage")
        metrics.record_unit(0, label="u0", size=1)
        path = tmp_path / "metrics.json"
        metrics.save(path)
        assert json.loads(path.read_text())["kind"] == "campaign-metrics"
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == [], "temp file leaked by save()"

    def test_torn_metrics_degrade_to_no_telemetry(self, store, tmp_path):
        scheduler = Scheduler(store, tmp_path, quiet=True)
        service = CampaignService(store, scheduler)
        job = store.submit("pvf", _tiny_pvf_params())
        jobdir = scheduler.jobdir(job.id)
        jobdir.mkdir(parents=True)
        # a torn write: valid prefix of a real payload, cut mid-token
        (jobdir / "metrics.json").write_text(
            '{"kind": "campaign-metrics", "version": 1, "uni')
        payload = service.job(job.id)
        assert payload["telemetry"] is None

    def test_torn_metrics_never_500_over_http(self, tmp_path):
        with ServiceDaemon(tmp_path / "svc", port=0, poll_interval=5,
                           quiet=True, execute_jobs=False) as daemon:
            from repro.service import ServiceClient

            client = ServiceClient(daemon.url, timeout=30)
            job = client.submit("pvf", app="MxM", injections=6,
                                batch_size=3)
            jobdir = daemon.scheduler.jobdir(job["id"])
            jobdir.mkdir(parents=True)
            (jobdir / "metrics.json").write_text('{"kind": "campa')
            assert client.job(job["id"])["telemetry"] is None


class TestHealthStaysCheap:
    def test_health_never_loads_job_rows(self, store, tmp_path):
        for _ in range(5):
            store.submit("pvf", {})
        store.claim_next()
        scheduler = Scheduler(store, tmp_path, quiet=True)
        service = CampaignService(store, scheduler, max_queue_depth=10)

        def forbidden(*args, **kwargs):
            raise AssertionError("/health must not list job rows")

        store.list_jobs = forbidden
        health = service.health()
        assert health["jobs"]["queued"] == 4
        assert health["jobs"]["running"] == 1
        assert health["queue_depth"] == 4
        assert health["max_queue_depth"] == 10
        assert health["workers"] == {"known": 0, "alive": 0}

    def test_count_states_matches_list_jobs(self, store):
        for _ in range(3):
            store.submit("pvf", {})
        job = store.claim_next()
        store.finish(job.id, "failed", error="x")
        counts = store.count_states()
        assert counts == {"queued": 2, "running": 0, "done": 0,
                          "failed": 1, "cancelled": 0}
