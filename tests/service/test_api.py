"""HTTP API over a live daemon, plus transport-free service semantics."""

import json

import pytest

from repro.errors import ServiceError
from repro.service import (
    ApiError,
    CampaignService,
    JobStore,
    Scheduler,
    ServiceClient,
    ServiceDaemon,
    content_etag,
)


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("service")
    with ServiceDaemon(workdir, port=0, poll_interval=0.05,
                       quiet=True) as daemon:
        yield daemon


@pytest.fixture(scope="module")
def client(daemon):
    return ServiceClient(daemon.url, timeout=30.0)


class TestHttpApi:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["jobs"]) == {"queued", "running", "done",
                                       "failed", "cancelled"}

    def test_submit_run_fetch_roundtrip(self, daemon, client):
        job = client.submit("pvf", app="MxM", injections=20, seed=7,
                            batch_size=10)
        assert job["state"] == "queued"
        assert job["params"]["app"] == "MxM"
        done = client.wait(job["id"], timeout=120)
        assert done["state"] == "done"
        assert done["result"]["n_injections"] == 20

        # the single-job view carries live telemetry summaries
        record = client.job(job["id"])
        assert record["telemetry"], "expected stage metrics"
        assert record["telemetry"][0]["kind"] == "campaign-metrics"
        assert all("units" not in stage for stage in record["telemetry"])

        # and shows up in the listing
        listed = client.jobs(state="done")
        assert job["id"] in [j["id"] for j in listed]

    def test_report_artifact_is_bit_identical_to_direct_run(
            self, daemon, client):
        from repro.apps import make_application
        from repro.swfi.campaign import run_pvf_campaign
        from repro.swfi.models import SingleBitFlip

        job = client.submit("pvf", app="MxM", injections=30, seed=5,
                            batch_size=10)
        client.wait(job["id"], timeout=120)
        body, etag = client.artifact(job["id"], "report")
        direct = run_pvf_campaign(
            make_application("MxM", seed=5), SingleBitFlip(), 30,
            seed=5, batch_size=10)
        assert json.loads(body)["report"] == direct.to_dict()

        # ETag revalidation: unchanged artifact is not re-downloaded
        assert etag == content_etag(body)
        again, same_etag = client.artifact(job["id"], "report", etag=etag)
        assert again is None
        assert same_etag == etag

    def test_artifact_responses_announce_their_schema(self, daemon,
                                                      client):
        from urllib.request import urlopen

        job = client.submit("pvf", app="MxM", injections=10, seed=3,
                            batch_size=5)
        client.wait(job["id"], timeout=120)
        with urlopen(f"{daemon.url}/artifacts/{job['id']}/report",
                     timeout=30) as response:
            assert response.headers["X-Artifact-Schema"] == "pvf-report"
            assert response.headers["X-Artifact-Version"] == "1"
        with urlopen(f"{daemon.url}/artifacts/{job['id']}/metrics",
                     timeout=30) as response:
            assert (response.headers["X-Artifact-Schema"]
                    == "campaign-metrics")
            assert response.headers["X-Artifact-Version"] == "1"

    def test_metrics_artifact_has_per_unit_rows(self, daemon, client):
        job = client.submit("pvf", app="MxM", injections=20, seed=9,
                            batch_size=10)
        client.wait(job["id"], timeout=120)
        body, _ = client.artifact(job["id"], "metrics")
        payload = json.loads(body)
        assert payload["kind"] == "campaign-metrics"
        assert len(payload["units"]) == 2

    def test_submit_validation_is_a_400(self, client):
        with pytest.raises(ServiceError, match="400"):
            client.submit("pvf", app="nosuch")
        with pytest.raises(ServiceError, match="400"):
            client.submit("fuzz")

    def test_unknown_job_is_a_404(self, client):
        with pytest.raises(ServiceError, match="404"):
            client.job(9999)
        with pytest.raises(ServiceError, match="404"):
            client.artifact(9999, "report")

    def test_unknown_artifact_and_endpoint_are_404(self, daemon, client):
        job = client.submit("pvf", app="MxM", injections=10)
        client.wait(job["id"], timeout=120)
        with pytest.raises(ServiceError, match="unknown artifact"):
            client.artifact(job["id"], "coredump")
        # a pvf job distils no syndrome database
        with pytest.raises(ServiceError, match="404"):
            client.artifact(job["id"], "syndromes")
        with pytest.raises(ServiceError, match="no such endpoint"):
            client._json("GET", "/nope")

    def test_cancel_done_job_is_a_409(self, daemon, client):
        job = client.submit("pvf", app="MxM", injections=10)
        client.wait(job["id"], timeout=120)
        with pytest.raises(ServiceError, match="409"):
            client.cancel(job["id"])

    def test_service_json_records_bound_address(self, daemon):
        payload = json.loads(
            (daemon.workdir / "service.json").read_text())
        assert payload["url"] == daemon.url
        assert payload["port"] == daemon.address[1]


class TestServiceSemantics:
    """Transport-free checks against CampaignService (no scheduler loop),
    so queued-state transitions can't race a running daemon."""

    @pytest.fixture
    def service(self, tmp_path):
        store = JobStore(tmp_path / "jobs.sqlite3")
        return CampaignService(store, Scheduler(store, tmp_path))

    def test_cancel_queued_job_is_immediate(self, service):
        job = service.submit({"kind": "pvf", "params": {"app": "MxM"}})
        cancelled = service.cancel(job["id"])
        assert cancelled["state"] == "cancelled"

    def test_requeue_after_cancel(self, service):
        job = service.submit({"kind": "pvf", "params": {"app": "MxM"}})
        service.cancel(job["id"])
        requeued = service.requeue(job["id"])
        assert requeued["state"] == "queued"

    def test_requeue_queued_job_is_a_409(self, service):
        job = service.submit({"kind": "pvf", "params": {"app": "MxM"}})
        with pytest.raises(ApiError) as excinfo:
            service.requeue(job["id"])
        assert excinfo.value.status == 409

    def test_submit_rejects_non_object_body(self, service):
        with pytest.raises(ApiError) as excinfo:
            service.submit(["not", "a", "dict"])
        assert excinfo.value.status == 400

    def test_artifact_before_completion_is_a_404(self, service):
        job = service.submit({"kind": "pvf", "params": {"app": "MxM"}})
        with pytest.raises(ApiError) as excinfo:
            service.artifact(job["id"], "report")
        assert excinfo.value.status == 404
        assert "state: queued" in str(excinfo.value)
