"""The durability acceptance test: SIGKILL the daemon mid-campaign.

A real daemon subprocess (``python -m repro serve``) is killed without
warning while a job is running; a second daemon started on the same
workdir must resume the job from its journal and finish with a report
bit-identical to the synchronous CLI run.
"""

import json
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import ServiceClient

pytestmark = pytest.mark.slow


def _spawn_daemon(workdir: Path) -> "tuple[subprocess.Popen, str]":
    (workdir / "service.json").unlink(missing_ok=True)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--workdir",
         str(workdir), "--port", "0", "--quiet"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if (workdir / "service.json").exists():
            try:
                payload = json.loads(
                    (workdir / "service.json").read_text())
                return process, payload["url"]
            except (json.JSONDecodeError, KeyError):
                pass  # written halfway; retry
        if process.poll() is not None:
            raise RuntimeError("daemon died during startup")
        time.sleep(0.1)
    process.kill()
    raise RuntimeError("daemon never wrote service.json")


def test_sigkill_mid_job_then_restart_resumes_bit_identical(tmp_path):
    from repro.apps import make_application
    from repro.swfi.campaign import run_pvf_campaign
    from repro.swfi.models import SingleBitFlip

    workdir = tmp_path / "service"
    workdir.mkdir()
    process, url = _spawn_daemon(workdir)
    journal = workdir / "jobs" / "1" / "pvf.jsonl"
    try:
        client = ServiceClient(url, timeout=30)
        job = client.submit("pvf", app="MxM", injections=400, seed=11,
                            batch_size=20)

        # wait until at least one work unit is journaled, but the
        # campaign (20 units) is still far from done -- then SIGKILL
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal.exists() and \
                    len(journal.read_text().splitlines()) >= 2:
                break
            time.sleep(0.02)
        else:
            pytest.fail("job never journaled a unit")
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=30)

        units_before = len(journal.read_text().splitlines()) - 1
        assert units_before >= 1

        # restart on the same workdir: recover() re-queues the job and
        # the journal turns the re-run into a resume
        process, url = _spawn_daemon(workdir)
        client = ServiceClient(url, timeout=30)
        done = client.wait(job["id"], timeout=180, poll=0.2)
        assert done["state"] == "done"
        assert done["attempts"] == 2
        assert done["result"]["n_injections"] == 400

        body, _ = client.artifact(job["id"], "report")
        direct = run_pvf_campaign(
            make_application("MxM", seed=11), SingleBitFlip(), 400,
            seed=11, batch_size=20)
        assert json.loads(body)["report"] == direct.to_dict()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=30)
