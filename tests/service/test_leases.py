"""Lease-based multi-worker claiming: leases, shards, reaping, registry."""

import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service import JobStore


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs.sqlite3")


def quarters(total):
    """A plan callable sharding every job into *total* units of one."""
    def plan(job):
        if job.kind == "pipeline":
            return None
        return total, 1
    return plan


class TestJobLeases:
    def test_claim_stamps_worker_and_lease(self, store):
        store.submit("pvf", {})
        job = store.claim_next(worker="w1", lease_seconds=30.0)
        assert job.worker == "w1"
        assert job.lease_expires_at == pytest.approx(time.time() + 30,
                                                     abs=5)

    def test_in_process_claim_has_no_lease(self, store):
        store.submit("pvf", {})
        job = store.claim_next()
        assert job.worker is None
        assert job.lease_expires_at is None

    def test_priority_order_then_fifo(self, store):
        store.submit("pvf", {"tag": "low"})
        store.submit("pvf", {"tag": "high"}, priority=5)
        store.submit("pvf", {"tag": "high2"}, priority=5)
        order = [store.claim_next().params["tag"] for _ in range(3)]
        assert order == ["high", "high2", "low"]

    def test_heartbeat_renews_lease(self, store):
        store.submit("pvf", {})
        job = store.claim_next(worker="w1", lease_seconds=1.0)
        renewed = store.heartbeat(job.id, "w1", 60.0)
        assert renewed.lease_expires_at > job.lease_expires_at

    def test_heartbeat_by_stranger_raises(self, store):
        store.submit("pvf", {})
        job = store.claim_next(worker="w1", lease_seconds=30.0)
        with pytest.raises(ServiceError, match="holds no lease"):
            store.heartbeat(job.id, "w2", 30.0)

    def test_heartbeat_carries_cancel_flag(self, store):
        store.submit("pvf", {})
        job = store.claim_next(worker="w1", lease_seconds=30.0)
        store.request_cancel(job.id)
        assert store.heartbeat(job.id, "w1", 30.0).cancel_requested


class TestReaping:
    def test_expired_job_lease_is_requeued(self, store):
        store.submit("pvf", {})
        job = store.claim_next(worker="dead", lease_seconds=30.0)
        reaped = store.reap(now=time.time() + 60)
        assert reaped["jobs"] == [job.id]
        fresh = store.get(job.id)
        assert fresh.state == "queued"
        assert fresh.worker is None
        # the next claimant picks it straight up
        assert store.claim_next(worker="alive",
                                lease_seconds=30.0).id == job.id

    def test_live_lease_is_left_alone(self, store):
        store.submit("pvf", {})
        job = store.claim_next(worker="w1", lease_seconds=300.0)
        assert store.reap() == {"jobs": [], "shards": [],
                                "cancelled": []}
        assert store.get(job.id).state == "running"

    def test_expired_lease_with_cancel_lands_cancelled(self, store):
        store.submit("pvf", {})
        job = store.claim_next(worker="dead", lease_seconds=30.0)
        store.request_cancel(job.id)
        reaped = store.reap(now=time.time() + 60)
        assert reaped["cancelled"] == [job.id]
        assert store.get(job.id).state == "cancelled"

    def test_heartbeat_after_reap_raises(self, store):
        store.submit("pvf", {})
        job = store.claim_next(worker="dead", lease_seconds=30.0)
        store.reap(now=time.time() + 60)
        with pytest.raises(ServiceError, match="holds no lease"):
            store.heartbeat(job.id, "dead", 30.0)

    def test_recover_leaves_leased_jobs_to_the_reaper(self, store):
        store.submit("pvf", {})
        store.submit("pvf", {})
        leased = store.claim_next(worker="remote", lease_seconds=300.0)
        in_process = store.claim_next()
        recovered = store.recover()
        assert [j.id for j in recovered] == [in_process.id]
        assert store.get(leased.id).state == "running"
        assert store.get(in_process.id).state == "queued"


class TestShardClaiming:
    def test_first_claim_shards_the_job(self, store):
        job = store.submit("pvf", {})
        claimed = store.claim_shard("w1", 30.0, quarters(3))
        assert claimed is not None
        fresh, (lo, hi) = claimed
        assert fresh.id == job.id
        assert fresh.state == "running"
        assert (lo, hi) == (0, 1)
        states = [s["state"] for s in store.shards(job.id)]
        assert states == ["leased", "queued", "queued"]

    def test_claims_prefer_the_in_flight_job(self, store):
        first = store.submit("pvf", {})
        store.claim_shard("w1", 30.0, quarters(2))
        store.submit("pvf", {}, priority=9)
        # the second claim continues job 1 despite job 2's priority
        job, (lo, _) = store.claim_shard("w2", 30.0, quarters(2))
        assert (job.id, lo) == (first.id, 1)

    def test_unshardable_jobs_are_skipped(self, store):
        store.submit("pipeline", {})
        shardable = store.submit("pvf", {})
        job, _ = store.claim_shard("w1", 30.0, quarters(1))
        assert job.id == shardable.id

    def test_empty_queue_returns_none(self, store):
        assert store.claim_shard("w1", 30.0, quarters(4)) is None

    def test_complete_shard_reports_the_last_one(self, store):
        store.submit("pvf", {})
        job, (lo0, _) = store.claim_shard("w1", 30.0, quarters(2))
        _, (lo1, _) = store.claim_shard("w1", 30.0, quarters(2))
        assert store.complete_shard(job.id, lo0, "w1", units=1) is False
        assert store.complete_shard(job.id, lo1, "w1", units=1) is True

    def test_complete_by_stranger_raises(self, store):
        store.submit("pvf", {})
        job, (lo, _) = store.claim_shard("w1", 30.0, quarters(1))
        with pytest.raises(ServiceError, match="no longer holds"):
            store.complete_shard(job.id, lo, "w2")

    def test_expired_shard_lease_is_reclaimed_by_next_claim(self, store):
        store.submit("pvf", {})
        job, (lo, _) = store.claim_shard("dead", 0.05, quarters(1))
        time.sleep(0.1)
        # claim_shard reaps inline: the dead worker's shard is handed out
        again, (lo2, _) = store.claim_shard("alive", 30.0, quarters(1))
        assert (again.id, lo2) == (job.id, lo)
        # the dead worker's late completion is refused
        with pytest.raises(ServiceError, match="no longer holds"):
            store.complete_shard(job.id, lo, "dead")

    def test_release_requeues_the_shard(self, store):
        store.submit("pvf", {})
        job, (lo, _) = store.claim_shard("w1", 30.0, quarters(1))
        store.release_shard(job.id, lo, "w1")
        assert store.shards(job.id)[0]["state"] == "queued"
        with pytest.raises(ServiceError, match="holds no lease"):
            store.release_shard(job.id, lo, "w1")

    def test_shard_heartbeat_renews_shard_lease(self, store):
        store.submit("pvf", {})
        job, (lo, _) = store.claim_shard("w1", 30.0, quarters(1))
        before = store.shards(job.id)[0]["lease_expires_at"]
        store.heartbeat(job.id, "w1", 600.0)
        assert store.shards(job.id)[0]["lease_expires_at"] > before

    def test_requeue_preserves_done_shards(self, store):
        store.submit("pvf", {})
        job, (lo, _) = store.claim_shard("w1", 30.0, quarters(2))
        store.complete_shard(job.id, lo, "w1", units=1)
        store.finish(job.id, "failed", error="boom")
        store.requeue(job.id)
        states = [s["state"] for s in store.shards(job.id)]
        assert states == ["done", "queued"]
        # re-claiming hands out only the unfinished range
        _, (lo2, _) = store.claim_shard("w2", 30.0, quarters(2))
        assert lo2 == 1

    def test_sharded_jobs_ready(self, store):
        store.submit("pvf", {})
        job, (lo, _) = store.claim_shard("w1", 30.0, quarters(1))
        assert store.sharded_jobs_ready() == []
        store.complete_shard(job.id, lo, "w1")
        assert store.sharded_jobs_ready() == [job.id]

    def test_concurrent_claims_never_share_a_shard(self, store):
        store.submit("pvf", {})
        leased, lock = [], threading.Lock()

        def worker(name):
            while True:
                claimed = store.claim_shard(name, 300.0, quarters(16))
                if claimed is None:
                    return
                job, units = claimed
                with lock:
                    leased.append((job.id, units[0]))

        threads = [threading.Thread(target=worker, args=(f"w{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(leased) == 16
        assert len(set(leased)) == 16


class TestWorkerRegistry:
    def test_claims_and_units_are_tallied(self, store):
        store.submit("pvf", {})
        job, (lo, _) = store.claim_shard("w1", 30.0, quarters(1))
        store.complete_shard(job.id, lo, "w1", units=5)
        (row,) = store.list_workers()
        assert row["id"] == "w1"
        assert row["jobs_claimed"] == 1
        assert row["units_done"] == 5
        assert row["alive"] is True

    def test_silent_worker_goes_stale(self, store):
        store.submit("pvf", {})
        store.claim_next(worker="w1", lease_seconds=30.0)
        (row,) = store.list_workers(alive_within=60.0,
                                    now=time.time() + 3600)
        assert row["alive"] is False
