"""Campaign service: job store, scheduler, HTTP API."""
