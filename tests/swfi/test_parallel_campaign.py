"""Parallel / checkpointed campaign runner and injection-state fixes.

The load-bearing invariant: batch randomness depends only on the batch
index (child seed *i* of the campaign seed), so a campaign's merged
report is bit-identical whether the batches ran serially, across worker
processes, or split over a checkpoint/resume boundary.
"""

import time

import numpy as np
import pytest

from repro.errors import CampaignError
from repro.gpu.isa import Opcode
from repro.rng import make_rng, spawn_seed_range, spawn_seeds
from repro.rtl.classify import Outcome
from repro.swfi.campaign import (
    PVFReport,
    plan_batches,
    run_pvf_batch,
    run_pvf_campaign,
    run_pvf_until,
)
from repro.swfi.injector import SoftwareInjector
from repro.swfi.models import (
    ModuleWeightedSyndrome,
    RelativeErrorSyndrome,
    SingleBitFlip,
)
from repro.swfi.ops import SassOps
from repro.apps.base import GPUApplication


class MixedApp(GPUApplication):
    """FADDs then IMULs then a store: several opcodes, cheap to run."""

    name = "mixed"

    def run(self, ops):
        data = np.arange(16, dtype=np.float32)
        summed = ops.fadd(data, np.float32(1.0))
        scaled = ops.imul(np.arange(16, dtype=np.int32), 3)
        return ops.gst(summed + scaled.astype(np.float32))


class CountingApp(MixedApp):
    """MixedApp that counts how many times the workload executes."""

    def __init__(self):
        self.runs = 0

    def run(self, ops):
        self.runs += 1
        return super().run(ops)


class SleepyApp(GPUApplication):
    """Fast fault-free; sleeps (a runaway loop stand-in) when corrupted."""

    name = "sleepy"

    def run(self, ops):
        out = ops.fadd(np.arange(8, dtype=np.float32), np.float32(1.0))
        if not np.array_equal(out, np.arange(8, dtype=np.float32) + 1):
            time.sleep(30)
        return out


class TestSeedSharding:
    def test_spawn_seeds_prefix_stable(self):
        assert spawn_seeds(11, 4) == spawn_seeds(11, 9)[:4]

    def test_spawn_seed_range_matches_full_list(self):
        assert spawn_seed_range(11, 3, 4) == spawn_seeds(11, 7)[3:]

    def test_spawn_seed_range_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn_seed_range(0, -1, 2)

    def test_plan_batches(self):
        assert plan_batches(120, 50) == [50, 50, 20]
        assert plan_batches(50, 50) == [50]
        assert plan_batches(0, 50) == []

    def test_plan_batches_rejects_bad_sizes(self):
        with pytest.raises(CampaignError):
            plan_batches(10, 0)
        with pytest.raises(CampaignError):
            plan_batches(-1)


class TestMerge:
    def test_serial_equals_manual_batch_merge(self):
        """The serial campaign is exactly the ordered merge of its batches."""
        app, model = MixedApp(), SingleBitFlip()
        serial = run_pvf_campaign(app, model, 120, seed=13, batch_size=50)
        sizes = plan_batches(120, 50)
        seeds = spawn_seed_range(13, 0, len(sizes))
        merged = PVFReport.merge([
            run_pvf_batch(app, model, size, batch_seed)
            for size, batch_seed in zip(sizes, seeds)])
        assert serial.to_dict() == merged.to_dict()

    def test_merge_rejects_mismatched_reports(self):
        a = PVFReport("app", "m1", n_injections=1, n_masked=1)
        b = PVFReport("app", "m2", n_injections=1, n_masked=1)
        with pytest.raises(CampaignError):
            PVFReport.merge([a, b])
        with pytest.raises(CampaignError):
            PVFReport.merge([])

    def test_roundtrip_dict(self):
        report = run_pvf_campaign(MixedApp(), SingleBitFlip(), 40, seed=1)
        assert PVFReport.from_dict(report.to_dict()).to_dict() == \
            report.to_dict()


class TestParallelDeterminism:
    @pytest.mark.multicore
    def test_bitflip_parallel_identical(self):
        app, model = MixedApp(), SingleBitFlip()
        serial = run_pvf_campaign(app, model, 120, seed=3, batch_size=30)
        parallel = run_pvf_campaign(app, model, 120, seed=3, batch_size=30,
                                    n_jobs=2)
        assert serial.to_dict() == parallel.to_dict()

    @pytest.mark.multicore
    def test_syndrome_parallel_identical(self, small_database):
        app = MixedApp()
        model = RelativeErrorSyndrome(small_database)
        serial = run_pvf_campaign(app, model, 80, seed=9, batch_size=20)
        parallel = run_pvf_campaign(app, model, 80, seed=9, batch_size=20,
                                    n_jobs=2)
        assert serial.to_dict() == parallel.to_dict()

    def test_parallel_rejects_shared_injector(self):
        app = MixedApp()
        with pytest.raises(CampaignError):
            run_pvf_campaign(app, SingleBitFlip(), 10, n_jobs=2,
                             injector=SoftwareInjector(app))

    def test_zero_injections(self):
        report = run_pvf_campaign(MixedApp(), SingleBitFlip(), 0, seed=0)
        assert report.n_injections == 0
        assert report.app_name == "mixed"


class TestCheckpoint:
    def test_resume_skips_finished_batches(self, tmp_path):
        app, model = MixedApp(), SingleBitFlip()
        path = tmp_path / "campaign.jsonl"
        full = run_pvf_campaign(app, model, 100, seed=5, batch_size=25,
                                checkpoint=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + 4  # header + one record per batch
        # keep the header and the first two batches, then resume
        path.write_text("\n".join(lines[:3]) + "\n")
        counting = CountingApp()
        resumed = run_pvf_campaign(counting, model, 100, seed=5,
                                   batch_size=25, checkpoint=path,
                                   resume=True)
        assert resumed.to_dict() == full.to_dict()
        # golden pass + one app run per remaining injection (2 batches)
        assert counting.runs == 1 + 50

    def test_resume_rejects_different_campaign(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_pvf_campaign(MixedApp(), SingleBitFlip(), 20, seed=5,
                         checkpoint=path)
        with pytest.raises(CampaignError):
            run_pvf_campaign(MixedApp(), SingleBitFlip(), 20, seed=6,
                             checkpoint=path, resume=True)

    def test_resume_requires_path(self):
        with pytest.raises(CampaignError):
            run_pvf_campaign(MixedApp(), SingleBitFlip(), 10, resume=True)

    def test_corrupt_trailing_line_warns_and_reruns(self, tmp_path):
        """A journal torn by a mid-write kill resumes, minus one batch."""
        app, model = MixedApp(), SingleBitFlip()
        path = tmp_path / "campaign.jsonl"
        full = run_pvf_campaign(app, model, 100, seed=5, batch_size=25,
                                checkpoint=path)
        text = path.read_text()
        path.write_text(text[:len(text) - 30])  # chop the final record
        with pytest.warns(UserWarning, match="corrupt checkpoint line"):
            resumed = run_pvf_campaign(app, model, 100, seed=5,
                                       batch_size=25, checkpoint=path,
                                       resume=True)
        assert resumed.to_dict() == full.to_dict()
        # the damaged journal was compacted and re-completed
        assert len(path.read_text().splitlines()) == 1 + 4

    def test_fresh_run_overwrites_stale_journal(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        run_pvf_campaign(MixedApp(), SingleBitFlip(), 20, seed=5,
                         checkpoint=path)
        run_pvf_campaign(MixedApp(), SingleBitFlip(), 20, seed=6,
                         checkpoint=path)  # no resume: start over
        assert len(path.read_text().splitlines()) == 2


class TestRunUntil:
    def test_serial_reproducible(self):
        kwargs = dict(min_injections=50, max_injections=200, seed=2)
        a = run_pvf_until(MixedApp(), SingleBitFlip(), **kwargs)
        b = run_pvf_until(MixedApp(), SingleBitFlip(), **kwargs)
        assert a.to_dict() == b.to_dict()

    @pytest.mark.multicore
    def test_parallel_grows_in_rounds(self):
        report = run_pvf_until(
            MixedApp(), SingleBitFlip(), target_halfwidth=0.001,
            min_injections=20, max_injections=80, seed=2, n_jobs=2)
        assert report.n_injections == 80


class TestWallClockGuard:
    def test_runaway_injection_becomes_due(self):
        injector = SoftwareInjector(SleepyApp())
        rng = make_rng(0)
        start = time.perf_counter()
        result = injector.inject_one(SingleBitFlip(), rng, timeout=0.2)
        assert time.perf_counter() - start < 5.0
        assert result.outcome is Outcome.DUE
        assert "wall-clock guard" in result.detail

    def test_fast_run_unaffected_by_timeout(self):
        injector = SoftwareInjector(MixedApp())
        rng = make_rng(1)
        with_guard = injector.inject_one(SingleBitFlip(), rng,
                                         timeout=30.0)
        assert with_guard.outcome in (Outcome.SDC, Outcome.MASKED)


class TestOpcodeAttribution:
    """Regression: a span crossing an op boundary must keep the first
    (targeted) opcode, and report every corrupted opcode."""

    def _run_span(self, target, span):
        def corruptor(opcode, golden, operands, is_float):
            return golden + 1
        ops = SassOps(target=target, corruptor=corruptor, span=span)
        ops.fadd(np.zeros(4, dtype=np.float32), np.float32(0.0))
        ops.imul(np.ones(4, dtype=np.int32), 1)
        return ops

    def test_span_crossing_attributed_to_first_opcode(self):
        ops = self._run_span(target=3, span=2)
        assert ops.injected is Opcode.FADD  # was IMUL before the fix
        assert ops.corrupted_opcodes == [Opcode.FADD, Opcode.IMUL]
        assert ops.n_corrupted == 2

    def test_span_within_one_op(self):
        ops = self._run_span(target=1, span=2)
        assert ops.injected is Opcode.FADD
        assert ops.corrupted_opcodes == [Opcode.FADD]

    def test_result_exposes_corrupted_opcodes(self):
        class WideSpanModel(SingleBitFlip):
            def sample_span(self, rng):
                return 8

        injector = SoftwareInjector(MixedApp())
        result = injector.inject_one(WideSpanModel(), make_rng(4))
        assert result.opcode is result.corrupted_opcodes[0]
        assert all(isinstance(op, Opcode)
                   for op in result.corrupted_opcodes)


class TestModuleWeightedStateless:
    def test_corrupt_leaves_module_untouched(self, small_database):
        model = ModuleWeightedSyndrome(small_database)
        assert model.module is None
        rng = make_rng(0)
        for _ in range(10):
            model.corrupt(Opcode.FADD, 1.5, (1.0, 0.5), True, rng)
            assert model.module is None

    def test_deterministic_per_seed(self, small_database):
        model = ModuleWeightedSyndrome(small_database)
        a = [model.corrupt(Opcode.FADD, 1.5, (1.0, 0.5), True, make_rng(3))
             for _ in range(5)]
        b = [model.corrupt(Opcode.FADD, 1.5, (1.0, 0.5), True, make_rng(3))
             for _ in range(5)]
        assert a == b


class TestProfileFromGoldenRun:
    def test_single_execution_for_golden_and_profile(self):
        app = CountingApp()
        injector = SoftwareInjector(app)
        injector.run_golden()
        profile = injector.run_profile()
        total = injector.injectable_total
        assert app.runs == 1  # was 2 before the fix
        assert profile[Opcode.FADD] == 16
        assert total == 48

    def test_profile_first_also_runs_once(self):
        app = CountingApp()
        injector = SoftwareInjector(app)
        injector.run_profile()
        injector.run_golden()
        assert app.runs == 1
