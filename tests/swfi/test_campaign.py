"""Software campaign / PVF accounting tests."""

import numpy as np
import pytest

from repro.gpu.isa import Opcode
from repro.rtl.classify import Outcome
from repro.swfi.campaign import PVFReport, run_pvf_campaign
from repro.swfi.injector import InjectionResult
from repro.swfi.models import SingleBitFlip
from repro.apps.base import GPUApplication


class HalfMaskedApp(GPUApplication):
    """Output ignores half of the computed values."""

    name = "half"

    def run(self, ops):
        data = np.arange(8, dtype=np.float32)
        doubled = ops.fmul(data, np.float32(2.0))
        return doubled[:4]


class TestPVFReport:
    def _result(self, outcome, opcode=Opcode.FADD):
        return InjectionResult(outcome, opcode, target=0)

    def test_accounting(self):
        report = PVFReport("app", "model")
        report.add(self._result(Outcome.SDC))
        report.add(self._result(Outcome.MASKED))
        report.add(self._result(Outcome.DUE))
        report.add(self._result(Outcome.SDC, Opcode.IMUL))
        assert report.n_injections == 4
        assert report.pvf == pytest.approx(0.5)
        assert report.due_rate == pytest.approx(0.25)
        assert report.opcode_pvf("FADD") == pytest.approx(1 / 3)
        assert report.opcode_pvf("IMUL") == pytest.approx(1.0)
        assert report.opcode_pvf("GLD") == 0.0

    def test_empty_report(self):
        report = PVFReport("app", "model")
        assert report.pvf == 0.0 and report.due_rate == 0.0

    def test_confidence_interval_shrinks(self):
        small = PVFReport("a", "m", n_injections=10, n_sdc=5)
        large = PVFReport("a", "m", n_injections=1000, n_sdc=500)
        lo_s, hi_s = small.confidence_interval()
        lo_l, hi_l = large.confidence_interval()
        assert (hi_l - lo_l) < (hi_s - lo_s)


class TestRunCampaign:
    def test_masking_reflected_in_pvf(self):
        report = run_pvf_campaign(HalfMaskedApp(), SingleBitFlip(),
                                  n_injections=120, seed=0)
        assert report.n_injections == 120
        # half the injected corruptions land in discarded outputs
        assert 0.3 <= report.pvf <= 0.7

    def test_seed_reproducibility(self):
        a = run_pvf_campaign(HalfMaskedApp(), SingleBitFlip(), 50, seed=3)
        b = run_pvf_campaign(HalfMaskedApp(), SingleBitFlip(), 50, seed=3)
        assert a.n_sdc == b.n_sdc
        assert a.per_opcode_sdc == b.per_opcode_sdc
