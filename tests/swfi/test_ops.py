"""Instrumented SASS op-layer tests."""

import numpy as np
import pytest

from repro.gpu.isa import Opcode
from repro.swfi.ops import SassOps


class TestCounting:
    def test_elementwise_counts(self):
        ops = SassOps()
        ops.fadd(np.ones(10, np.float32), np.ones(10, np.float32))
        ops.fmul(np.ones(4, np.float32), 2.0)
        assert ops.counts[Opcode.FADD] == 10
        assert ops.counts[Opcode.FMUL] == 4
        assert ops.injectable_total == 14

    def test_broadcast_counts_output_size(self):
        ops = SassOps()
        ops.ffma(np.ones((8, 1), np.float32), np.ones((1, 8), np.float32),
                 np.zeros((8, 8), np.float32))
        assert ops.counts[Opcode.FFMA] == 64

    def test_other_instructions(self):
        ops = SassOps()
        ops.other(5)
        assert ops.other_count == 5
        assert ops.total == 5
        assert ops.injectable_total == 0

    def test_profile_drops_zero_entries(self):
        ops = SassOps()
        ops.iadd(1, 2)
        assert set(ops.profile()) == {Opcode.IADD}


class TestSemantics:
    def test_float32_arithmetic(self):
        ops = SassOps()
        a = np.array([1.5, 2.5], np.float32)
        b = np.array([0.25, -1.0], np.float32)
        assert np.array_equal(ops.fadd(a, b), a + b)
        assert np.array_equal(ops.fmul(a, b), a * b)
        assert np.array_equal(ops.ffma(a, b, a), a * b + a)

    def test_int32_arithmetic(self):
        ops = SassOps()
        a = np.array([3, -4], np.int32)
        b = np.array([5, 7], np.int32)
        assert np.array_equal(ops.iadd(a, b), a + b)
        assert np.array_equal(ops.imul(a, b), a * b)
        assert np.array_equal(ops.imad(a, b, a), a * b + a)

    def test_special_functions(self):
        ops = SassOps()
        x = np.array([0.5], np.float32)
        assert ops.fsin(x)[0] == np.sin(np.float32(0.5))
        assert ops.fexp(x)[0] == np.exp(np.float32(0.5))

    def test_memory_ops_copy(self):
        ops = SassOps()
        data = np.arange(5, dtype=np.int32)
        loaded = ops.gld(data)
        assert np.array_equal(loaded, data)
        loaded[0] = 99
        assert data[0] == 0  # gld returned a copy

    def test_iset_flags(self):
        ops = SassOps()
        flags = ops.iset(np.array([1, 5, 3], np.int32), 3, "lt")
        assert flags.tolist() == [1, 0, 0]
        flags = ops.fset(np.array([1.0, 5.0], np.float32), 3.0, "ge")
        assert flags.tolist() == [0, 1]

    def test_bra(self):
        ops = SassOps()
        assert ops.bra(True) is True
        assert ops.bra(False) is False
        assert ops.counts[Opcode.BRA] == 2


class TestTargeting:
    @staticmethod
    def _corrupt_to_99(opcode, golden, operands, is_float):
        return 99.0 if is_float else 99

    def test_exactly_one_element_corrupted(self):
        ops = SassOps(target=12, corruptor=self._corrupt_to_99)
        first = ops.fadd(np.zeros(10, np.float32), np.zeros(10, np.float32))
        second = ops.fadd(np.zeros(10, np.float32),
                          np.zeros(10, np.float32))
        assert np.all(first == 0)
        assert second[2] == 99.0
        assert np.sum(second != 0) == 1
        assert ops.injected is Opcode.FADD

    def test_out_of_range_target_never_fires(self):
        ops = SassOps(target=1000, corruptor=self._corrupt_to_99)
        result = ops.fadd(np.zeros(10, np.float32),
                          np.zeros(10, np.float32))
        assert np.all(result == 0)
        assert ops.injected is None

    def test_corruptor_receives_element_operands(self):
        seen = {}

        def spy(opcode, golden, operands, is_float):
            seen["opcode"] = opcode
            seen["golden"] = golden
            seen["operands"] = operands
            return golden

        ops = SassOps(target=1, corruptor=spy)
        ops.fmul(np.array([2.0, 3.0], np.float32),
                 np.array([10.0, 20.0], np.float32))
        assert seen["opcode"] is Opcode.FMUL
        assert seen["golden"] == 60.0
        assert seen["operands"] == (3.0, 20.0)

    def test_original_array_not_mutated(self):
        ops = SassOps(target=0, corruptor=self._corrupt_to_99)
        a = np.zeros(4, np.float32)
        b = np.zeros(4, np.float32)
        result = ops.fadd(a, b)
        assert result[0] == 99.0
        assert np.all(a == 0)

    def test_bra_corruption_flips_direction(self):
        def flip(opcode, golden, operands, is_float):
            return golden ^ 1

        ops = SassOps(target=0, corruptor=flip)
        assert ops.bra(True) is False
