"""Dynamic-profile (Figure 3) tests."""

import pytest

from repro.apps import MatrixMultiply, Quicksort
from repro.swfi.profiler import GROUPS, profile_application


class TestProfiles:
    def test_group_fractions_sum_to_one(self):
        profile = profile_application(MatrixMultiply(n=16, tile=8))
        fractions = profile.group_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_mxm_is_fp32_dominated(self):
        profile = profile_application(MatrixMultiply(n=16, tile=8))
        fractions = profile.group_fractions()
        assert fractions["FP32"] > 0.4
        assert max(fractions, key=fractions.get) == "FP32"

    def test_quicksort_is_control_dominated(self):
        profile = profile_application(Quicksort(n=256))
        fractions = profile.group_fractions()
        assert fractions["Control"] > 0.5

    def test_coverage_above_seventy_percent(self):
        """Paper Fig. 3: the 12 opcodes cover >70% of instructions."""
        for app in (MatrixMultiply(n=16, tile=8), Quicksort(n=256)):
            profile = profile_application(app)
            assert profile.characterized_coverage > 0.7

    def test_groups_partition_characterised_opcodes(self):
        from repro.gpu.isa import CHARACTERIZED_OPCODES

        grouped = [op for ops in GROUPS.values() for op in ops]
        assert sorted(grouped, key=str) == sorted(
            CHARACTERIZED_OPCODES, key=str)
