"""Software fault-model tests."""

import numpy as np
import pytest

from repro.gpu.bits import bit_diff, float_to_bits, int_to_bits
from repro.gpu.isa import Opcode
from repro.rng import make_rng
from repro.swfi.models import (
    DoubleBitFlip,
    RelativeErrorSyndrome,
    SingleBitFlip,
)


class TestBitFlips:
    def test_single_flip_on_float(self):
        model = SingleBitFlip()
        golden = 1.5
        corrupted = model.corrupt(Opcode.FADD, golden, (1.0, 0.5), True,
                                  make_rng(0))
        flips = bit_diff(float_to_bits(golden),
                         float_to_bits(float(corrupted)))
        assert len(flips) == 1

    def test_single_flip_on_int(self):
        model = SingleBitFlip()
        corrupted = model.corrupt(Opcode.IADD, 12, (7, 5), False,
                                  make_rng(1))
        flips = bit_diff(int_to_bits(12), int_to_bits(int(corrupted)))
        assert len(flips) == 1

    def test_double_flip(self):
        model = DoubleBitFlip()
        corrupted = model.corrupt(Opcode.IADD, 0, (0, 0), False,
                                  make_rng(2))
        assert len(bit_diff(0, int_to_bits(int(corrupted)))) == 2

    def test_deterministic_given_rng(self):
        model = SingleBitFlip()
        a = model.corrupt(Opcode.FMUL, 2.0, (1.0, 2.0), True, make_rng(3))
        b = model.corrupt(Opcode.FMUL, 2.0, (1.0, 2.0), True, make_rng(3))
        assert a == b

    def test_nan_pattern_becomes_inf(self):
        # flipping into a NaN payload is reported as Inf, keeping outputs
        # comparable; find a seed that would hit the exponent/NaN region
        model = SingleBitFlip()
        results = [
            model.corrupt(Opcode.FADD, float("inf"), (), True, make_rng(s))
            for s in range(40)
        ]
        assert not any(np.isnan(results))

    def test_callable_binding(self):
        model = SingleBitFlip()
        corruptor = model(make_rng(4))
        value = corruptor(Opcode.FADD, 1.0, (1.0, 0.0), True)
        assert value != 1.0


class TestRelativeErrorSyndrome:
    def test_scales_float_output(self, small_database):
        model = RelativeErrorSyndrome(small_database)
        golden = 10.0
        rng = make_rng(5)
        values = [float(model.corrupt(Opcode.FADD, golden, (4.0, 6.0),
                                      True, rng))
                  for _ in range(50)]
        assert all(v != golden for v in values)
        # syndrome is symmetric: both directions appear
        assert any(v > golden for v in values)
        assert any(v < golden for v in values)

    def test_hundred_percent_doubles(self, small_database):
        """Paper Sec. IV-B: a 100% syndrome multiplies the output by two."""
        entry = small_database.lookup("FADD", "M", "fp32")
        saved_errors = list(entry.relative_errors)
        saved_fit = entry.fit
        entry.relative_errors[:] = [1.0]
        entry.fit = None
        try:
            model = RelativeErrorSyndrome(small_database, module="fp32")
            rng = make_rng(0)
            values = {float(model.corrupt(Opcode.FADD, 10.0, (4.0, 6.0),
                                          True, rng))
                      for _ in range(20)}
            assert values <= {20.0, 0.0}
        finally:
            entry.relative_errors[:] = saved_errors
            entry.fit = saved_fit

    def test_integer_output_changes(self, small_database):
        model = RelativeErrorSyndrome(small_database)
        rng = make_rng(6)
        corrupted = model.corrupt(Opcode.IADD, 100, (60, 40), False, rng)
        assert corrupted != 100
        assert isinstance(corrupted, np.int32)

    def test_input_range_from_operands(self, small_database):
        # Large operands must select the L syndromes when present
        model = RelativeErrorSyndrome(small_database)
        rng = make_rng(7)
        value = model.corrupt(Opcode.FADD, 8e9, (4e9, 4e9), True, rng)
        assert value != 8e9

    def test_module_pinning(self, small_database):
        model = RelativeErrorSyndrome(small_database, module="pipeline")
        rng = make_rng(8)
        value = model.corrupt(Opcode.FADD, 1.0, (0.5, 0.5), True, rng)
        assert value != 1.0
