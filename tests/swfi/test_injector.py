"""Software injector tests."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.gpu.isa import Opcode
from repro.rng import make_rng
from repro.rtl.classify import Outcome
from repro.swfi.injector import AppHangError, SoftwareInjector
from repro.swfi.models import SingleBitFlip
from repro.swfi.ops import SassOps
from repro.apps.base import GPUApplication


class TinyApp(GPUApplication):
    """Four FADDs; output equals input + 1."""

    name = "tiny"

    def run(self, ops):
        data = np.arange(4, dtype=np.float32)
        return ops.fadd(data, np.float32(1.0))


class HangingApp(GPUApplication):
    name = "hangs"

    def run(self, ops):
        flags = ops.iset(np.arange(4, dtype=np.int32), 2, "lt")
        if int(flags.sum()) != 2:
            raise AppHangError("loop bound corrupted")
        return flags


class EmptyApp(GPUApplication):
    name = "empty"

    def run(self, ops):
        ops.other(3)
        return np.zeros(1)


class TestReferencePasses:
    def test_golden_cached(self):
        injector = SoftwareInjector(TinyApp())
        first = injector.run_golden()
        assert injector.run_golden() is first

    def test_profile(self):
        injector = SoftwareInjector(TinyApp())
        counts = injector.run_profile()
        assert counts == {Opcode.FADD: 4}
        assert injector.injectable_total == 4


class TestInjection:
    def test_every_injection_is_sdc_for_tiny_app(self):
        injector = SoftwareInjector(TinyApp())
        rng = make_rng(0)
        outcomes = [injector.inject_one(SingleBitFlip(), rng).outcome
                    for _ in range(20)]
        assert all(outcome is Outcome.SDC for outcome in outcomes)

    def test_result_records_opcode_and_target(self):
        injector = SoftwareInjector(TinyApp())
        result = injector.inject_one(SingleBitFlip(), make_rng(1))
        assert result.opcode is Opcode.FADD
        assert 0 <= result.target < 4

    def test_hang_is_due(self):
        injector = SoftwareInjector(HangingApp())
        rng = make_rng(2)
        outcomes = {injector.inject_one(SingleBitFlip(), rng).outcome
                    for _ in range(30)}
        assert Outcome.DUE in outcomes

    def test_app_without_injectable_instructions_rejected(self):
        injector = SoftwareInjector(EmptyApp())
        with pytest.raises(ReproError):
            injector.inject_one(SingleBitFlip(), make_rng(0))


class TestSdcCriterion:
    def test_exact_mismatch(self):
        app = TinyApp()
        golden = app.golden()
        observed = golden.copy()
        assert not app.is_sdc(golden, observed)
        observed[2] += 1e-3
        assert app.is_sdc(golden, observed)

    def test_nan_pairs_match(self):
        app = TinyApp()
        golden = np.array([np.nan, 1.0], np.float32)
        assert not app.is_sdc(golden, golden.copy())

    def test_shape_change_is_sdc(self):
        app = TinyApp()
        assert app.is_sdc(np.zeros(3), np.zeros(4))
