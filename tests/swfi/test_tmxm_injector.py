"""t-MxM tile-corruption injector tests."""

import numpy as np
import pytest

from repro.rng import make_rng
from repro.swfi.tmxm_injector import TmxmInjector
from repro.syndrome.database import SyndromeDatabase
from repro.syndrome.records import TmxmEntry
from repro.syndrome.spatial import SpatialPattern


@pytest.fixture(scope="module")
def synthetic_db():
    """Database with deterministic, hard-hitting t-MxM syndromes."""
    db = SyndromeDatabase()
    entry = TmxmEntry("Random", "scheduler")
    for _ in range(10):
        entry.add_observation(SpatialPattern.ALL, [5.0] * 64)
    for _ in range(10):
        entry.add_observation(SpatialPattern.ROW, [5.0] * 8)
    entry.finalize()
    db.add_tmxm(entry)
    return db


class TestTmxmInjector:
    def test_injections_produce_sdcs(self, lenet_app, synthetic_db):
        injector = TmxmInjector(lenet_app, synthetic_db,
                                tile_kind="Random", module="scheduler")
        report = injector.run_campaign(12, seed=0)
        assert report.n_injections == 12
        assert report.n_sdc > 0
        assert set(report.pattern_counts) <= {"all", "row"}

    def test_criticality_detected(self, lenet_app, synthetic_db):
        """Large whole-tile corruption must flip LeNet classifications."""
        injector = TmxmInjector(lenet_app, synthetic_db,
                                tile_kind="Random", module="scheduler")
        report = injector.run_campaign(20, seed=1)
        assert report.n_critical > 0
        assert report.critical_rate <= report.pvf

    def test_missing_entry_rejected(self, lenet_app, synthetic_db):
        from repro.errors import SyndromeDatabaseError

        with pytest.raises(SyndromeDatabaseError):
            TmxmInjector(lenet_app, synthetic_db, tile_kind="Zero",
                         module="scheduler")

    def test_golden_cached(self, lenet_app, synthetic_db):
        injector = TmxmInjector(lenet_app, synthetic_db,
                                tile_kind="Random", module="scheduler")
        assert injector.run_golden() is injector.run_golden()

    def test_seed_reproducibility(self, lenet_app, synthetic_db):
        injector = TmxmInjector(lenet_app, synthetic_db,
                                tile_kind="Random", module="scheduler")
        a = injector.run_campaign(8, seed=5)
        b = injector.run_campaign(8, seed=5)
        assert a.n_sdc == b.n_sdc and a.n_critical == b.n_critical
