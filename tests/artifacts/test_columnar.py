"""Columnar record storage: sequence surface, merges, vectorised counts."""

from __future__ import annotations

import pickle

import pytest

from repro.artifacts.columnar import (
    DetailedColumns,
    GeneralColumns,
    StringPool,
)
from repro.outcomes import Outcome
from repro.rtl.classify import CorruptedValue
from repro.rtl.reports import (
    CampaignReport,
    DetailedRecord,
    FaultDescriptor,
    GeneralRecord,
)


def _general(i: int, outcome: Outcome = Outcome.MASKED,
             threads: int = 0, due_reason=None) -> GeneralRecord:
    return GeneralRecord(
        fault=FaultDescriptor(f"mod{i % 2}", f"reg{i % 3}", lane=i,
                              bit=i % 32, cycle=100 + i),
        outcome=outcome, n_corrupted_threads=threads,
        fault_fired=i % 2 == 0, due_reason=due_reason)


def _detailed(i: int, n_corrupted: int = 2) -> DetailedRecord:
    return DetailedRecord(
        fault=FaultDescriptor(f"mod{i % 2}", "reg", lane=i, bit=1,
                              cycle=10 + i),
        opcode="FADD", input_range="M", value_kind="f32",
        corrupted=tuple(
            CorruptedValue(thread=t, address=64 + t, golden_bits=i,
                           faulty_bits=i ^ (1 << t))
            for t in range(n_corrupted)))


class TestStringPool:
    def test_intern_dedupes(self):
        pool = StringPool()
        assert pool.intern("a") == pool.intern("a")
        assert pool.intern("b") != pool.intern("a")
        assert len(pool) == 2

    def test_none_maps_to_minus_one(self):
        pool = StringPool()
        assert pool.intern(None) == -1
        assert pool.value(-1) is None

    def test_remap_table(self):
        ours, theirs = StringPool(), StringPool()
        ours.intern("x")
        theirs.intern("y")
        theirs.intern("x")
        table = ours.remap_from(theirs)
        assert ours.value(int(table[0])) == "y"
        assert ours.value(int(table[1])) == "x"


class TestSequenceSurface:
    def test_append_getitem_iterate(self):
        columns = GeneralColumns()
        records = [_general(i) for i in range(5)]
        for record in records:
            columns.append(record)
        assert len(columns) == 5
        assert columns[0] == records[0]
        assert columns[-1] == records[-1]
        assert list(columns) == records
        assert columns[1:3] == records[1:3]
        assert columns == records

    def test_index_out_of_range(self):
        columns = GeneralColumns()
        columns.append(_general(0))
        with pytest.raises(IndexError):
            columns[1]
        with pytest.raises(IndexError):
            columns[-2]

    def test_detailed_round_trip(self):
        columns = DetailedColumns()
        records = [_detailed(i, n_corrupted=i % 3) for i in range(7)]
        for record in records:
            columns.append(record)
        assert list(columns) == records
        assert columns[3].corrupted == records[3].corrupted

    def test_growth_beyond_initial_capacity(self):
        columns = GeneralColumns()
        records = [_general(i) for i in range(100)]
        for record in records:
            columns.append(record)
        assert list(columns) == records


class TestMerge:
    def test_extend_remaps_string_ids(self):
        left, right = GeneralColumns(), GeneralColumns()
        left.append(_general(0, Outcome.DUE, due_reason="hang"))
        # right's pool interns strings in a different order
        right.append(_general(3, Outcome.DUE,
                              due_reason="wall-clock guard"))
        right.append(_general(2, Outcome.SDC, threads=2))
        expected = list(left) + list(right)
        left.extend(right)
        assert list(left) == expected
        assert left.count_due_containing("wall-clock") == 1

    def test_detailed_extend_shifts_spans(self):
        left, right = DetailedColumns(), DetailedColumns()
        left.append(_detailed(0, n_corrupted=3))
        right.append(_detailed(1, n_corrupted=2))
        right.append(_detailed(2, n_corrupted=1))
        expected = list(left) + list(right)
        left.extend(right)
        assert list(left) == expected
        assert len(left.corrupted_rows()) == 6

    def test_merge_matches_sequential_appends(self):
        batches = [[_general(i + 10 * b,
                             Outcome.SDC if (i + b) % 3 == 0
                             else Outcome.MASKED,
                             threads=(i + b) % 3)
                    for i in range(8)] for b in range(4)]
        merged = GeneralColumns()
        for batch in batches:
            part = GeneralColumns()
            for record in batch:
                part.append(record)
            merged.extend(part)
        flat = [r for batch in batches for r in batch]
        assert list(merged) == flat

    def test_report_merge_bit_identical_to_serial(self):
        def build(records, detailed):
            report = CampaignReport("FADD", "M", "fp32",
                                    n_injections=len(records))
            for record in records:
                report.general.append(record)
            for record in detailed:
                report.detailed.append(record)
            return report

        general = [_general(i, Outcome.SDC if i % 4 == 0
                            else Outcome.MASKED, threads=i % 4)
                   for i in range(20)]
        detailed = [_detailed(i) for i in range(0, 20, 4)]
        serial = build(general, detailed)
        parts = [build(general[i:i + 5], detailed[j:j + 2])
                 for i, j in ((0, 0), (5, 2), (10, 4), (15, 5))]
        merged = CampaignReport.merge(parts)
        assert merged.to_json() == serial.to_json()


class TestAggregates:
    @pytest.fixture()
    def columns(self):
        columns = GeneralColumns()
        for i in range(30):
            if i % 5 == 0:
                columns.append(_general(
                    i, Outcome.DUE,
                    due_reason="wall-clock guard: injection exceeded"
                    if i % 10 == 0 else "hang"))
            elif i % 3 == 0:
                columns.append(_general(i, Outcome.SDC,
                                        threads=1 + (i % 2)))
            else:
                columns.append(_general(i))
        return columns

    def test_counts_match_brute_force(self, columns):
        records = list(columns)
        for outcome in Outcome:
            assert columns.count(outcome) == sum(
                1 for r in records if r.outcome is outcome)
        assert columns.outcome_counts() == {
            o.value: columns.count(o) for o in Outcome}

    def test_sdc_single_multiple(self, columns):
        records = list(columns)
        assert columns.count_sdc(multiple=False) == sum(
            1 for r in records
            if r.outcome is Outcome.SDC and r.n_corrupted_threads == 1)
        assert columns.count_sdc(multiple=True) == sum(
            1 for r in records
            if r.outcome is Outcome.SDC and r.n_corrupted_threads > 1)

    def test_mean_threads(self, columns):
        records = [r for r in columns if r.outcome is Outcome.SDC]
        expected = (sum(r.n_corrupted_threads for r in records)
                    / len(records))
        assert columns.mean_threads_sdc() == pytest.approx(expected)

    def test_count_due_containing(self, columns):
        records = list(columns)
        expected = sum(1 for r in records
                       if r.due_reason and "wall-clock" in r.due_reason)
        assert columns.count_due_containing("wall-clock") == expected
        assert columns.count_due_containing("no-such-reason") == 0


class TestPickle:
    def test_general_columns_cross_process_shape(self):
        columns = GeneralColumns()
        for i in range(40):
            columns.append(_general(i, Outcome.SDC if i % 2 else
                                    Outcome.MASKED, threads=i % 2))
        clone = pickle.loads(pickle.dumps(columns))
        assert list(clone) == list(columns)
        clone.append(_general(99))      # still growable after transport
        assert len(clone) == 41

    def test_detailed_columns_pickle(self):
        columns = DetailedColumns()
        for i in range(10):
            columns.append(_detailed(i, n_corrupted=1 + i % 3))
        clone = pickle.loads(pickle.dumps(columns))
        assert list(clone) == list(columns)

    def test_pickle_trims_slack(self):
        columns = GeneralColumns()
        columns.append(_general(0))
        payload = pickle.dumps(columns)
        clone = pickle.loads(payload)
        assert len(clone._rows) == 1    # capacity 16 not shipped


class TestChunks:
    def test_iter_chunks_covers_everything(self):
        columns = DetailedColumns()
        records = [_detailed(i) for i in range(10)]
        for record in records:
            columns.append(record)
        chunks = list(columns.iter_chunks(size=3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        assert [r for chunk in chunks for r in chunk] == records

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            next(DetailedColumns().iter_chunks(size=0))
