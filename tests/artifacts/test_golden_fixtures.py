"""Golden-fixture compatibility: pre-refactor artifacts must keep loading.

The files under ``tests/fixtures/artifacts/`` were produced by the
hand-rolled serialisers that predate :mod:`repro.artifacts`.  They are
the compatibility contract of the artifact layer:

* every kind still loads, and re-serialises **byte-identically**;
* pre-refactor checkpoint journals still resume, and the reports merged
  from them equal the report fixtures bit for bit;
* the schema fingerprints pinned in ``schema_fingerprints.json`` match —
  a mismatch means a schema's bytes changed without a version bump and
  a migration (see the CI ``schema-compat`` job).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.artifacts import (
    all_fingerprints,
    dump_body,
    load_artifact,
    load_artifact_file,
)
from repro.campaign.checkpoint import CampaignCheckpoint
from repro.rtl.reports import CampaignReport
from repro.swfi.campaign import PVFReport

FIXTURES = Path(__file__).parent.parent / "fixtures" / "artifacts"


def _fixture_text(name: str) -> str:
    return (FIXTURES / name).read_text()


class TestByteIdentity:
    """Load each fixture, dump it back, compare bytes."""

    @pytest.mark.parametrize("kind, name, fmt", [
        ("rtl-report", "rtl_report.json",
         lambda p: json.dumps(p) + "\n"),
        ("pvf-report", "pvf_report.json",
         lambda p: json.dumps(p) + "\n"),
        ("campaign-metrics", "campaign_metrics.json",
         lambda p: json.dumps(p, indent=2) + "\n"),
    ])
    def test_round_trip(self, kind, name, fmt):
        raw = _fixture_text(name)
        obj = load_artifact(kind, json.loads(raw))
        assert fmt(dump_body(kind, obj)) == raw

    def test_syndrome_db_v1_migrates_then_round_trips(self):
        """The pre-precision fixture loads via the v1->v2 migration.

        Re-dumping must equal the fixture with every 3-element entry key
        extended by ``"fp32"`` — and nothing else changed.
        """
        raw = json.loads(_fixture_text("syndrome_db.json"))
        db = load_artifact("syndrome-db", raw)
        expected = dict(raw)
        expected["entries"] = [
            {**e, "key": list(e["key"]) + ["fp32"]}
            for e in raw["entries"]]
        assert (json.dumps(dump_body("syndrome-db", db))
                == json.dumps(expected))

    def test_job_record_v1_migrates_then_round_trips(self):
        """The pre-fabric fixture loads via the v1->v2 migration.

        Re-dumping must equal the fixture with the three lease-fabric
        fields appended at their leaseless defaults — and nothing else
        changed.
        """
        raw = json.loads(_fixture_text("job_record.json"))
        job = load_artifact("job-record", raw)
        expected = dict(raw)
        expected.update(priority=0, worker=None, lease_expires_at=None)
        assert (json.dumps(dump_body("job-record", job), indent=2)
                == json.dumps(expected, indent=2))

    def test_rtl_report_aggregates_survive(self):
        report = CampaignReport.from_json(_fixture_text("rtl_report.json"))
        assert report.n_injections == 40
        assert (report.n_masked + report.n_sdc + report.n_due
                == len(report.general))
        assert len(report.detailed) == report.n_sdc

    def test_pattern_report_fixture_matches_mining(self):
        """Mining the rtl_report fixture reproduces the pinned pattern
        report byte for byte — the analytics counterpart of the schema
        fingerprint pin."""
        from repro.analytics import mine_patterns
        from repro.artifacts import dump_artifact

        report = CampaignReport.from_json(_fixture_text("rtl_report.json"))
        payload = dump_artifact("pattern-report", mine_patterns(report))
        assert (json.dumps(payload) + "\n"
                == _fixture_text("pattern_report.json"))

    def test_pattern_report_round_trips(self):
        from repro.artifacts import dump_artifact

        raw = json.loads(_fixture_text("pattern_report.json"))
        obj = load_artifact("pattern-report", raw)
        assert dump_artifact("pattern-report", obj) == raw

    def test_journal_header_loads(self):
        header = json.loads(
            _fixture_text("rtl_journal.jsonl").splitlines()[0])
        assert load_artifact("campaign-journal", header) == header


class TestJournalResume:
    """Pre-refactor journals resume and merge bit-identically."""

    def _resume(self, tmp_path, name, header_keys, kind):
        journal = tmp_path / name
        journal.write_text(_fixture_text(name))
        header = json.loads(journal.read_text().splitlines()[0])
        wanted = {k: header[k] for k in header_keys}
        checkpoint = CampaignCheckpoint(journal, wanted, kind=kind,
                                        resume=True)
        assert checkpoint.completed, "fixture journal has batches"
        return checkpoint

    def test_rtl_journal_merges_to_fixture_report(self, tmp_path):
        checkpoint = self._resume(
            tmp_path, "rtl_journal.jsonl",
            ["campaign", "bench", "module", "fault_kind", "n_faults",
             "seed", "batch_size"], "rtl-report")
        merged = CampaignReport.merge(
            [checkpoint.completed[i]
             for i in sorted(checkpoint.completed)])
        assert (json.dumps(merged.to_dict()) + "\n"
                == _fixture_text("rtl_report.json"))

    def test_pvf_journal_merges_to_fixture_report(self, tmp_path):
        checkpoint = self._resume(
            tmp_path, "pvf_journal.jsonl",
            ["app", "model", "seed", "batch_size", "n_injections"],
            "pvf-report")
        merged = PVFReport.merge(
            [checkpoint.completed[i]
             for i in sorted(checkpoint.completed)])
        assert (json.dumps(merged.to_dict()) + "\n"
                == _fixture_text("pvf_report.json"))

    def test_new_journal_with_schema_stamp_resumes(self, tmp_path):
        """A post-refactor journal (stamped header) also resumes."""
        lines = _fixture_text("rtl_journal.jsonl").splitlines(keepends=True)
        header = json.loads(lines[0])
        wanted = {k: v for k, v in header.items()
                  if k not in ("kind", "version")}
        journal = tmp_path / "stamped.jsonl"
        header["schema"] = "rtl-report"
        journal.write_text(json.dumps(header) + "\n" + "".join(lines[1:]))
        checkpoint = CampaignCheckpoint(journal, wanted, kind="rtl-report",
                                        resume=True)
        assert sorted(checkpoint.completed) == [0, 1, 2, 3]


class TestEnvelopedFiles:
    def test_syndrome_db_file_round_trips_via_envelope(self, tmp_path):
        from repro.syndrome.database import SyndromeDatabase

        legacy = tmp_path / "legacy.json"
        legacy.write_text(_fixture_text("syndrome_db.json"))
        db = SyndromeDatabase.load(legacy)        # bare pre-envelope file
        saved = tmp_path / "db.json"
        db.save(saved)                            # now enveloped, current
        payload = json.loads(saved.read_text())
        assert payload["kind"] == "syndrome-db"
        assert payload["version"] == 2
        reloaded = SyndromeDatabase.load(saved)
        assert reloaded.to_dict() == db.to_dict()
        assert load_artifact_file(saved).to_dict() == db.to_dict()


class TestSyndromeDbMigration:
    """Pre-precision (v1) databases keep answering lookups identically."""

    def _load(self):
        from repro.syndrome.database import SyndromeDatabase

        return SyndromeDatabase.from_dict(
            json.loads(_fixture_text("syndrome_db.json")))

    def test_legacy_entries_load_as_fp32(self):
        db = self._load()
        assert db.entries(), "fixture database has entries"
        assert {e.key.precision for e in db.entries()} == {"fp32"}

    def test_legacy_lookups_bit_identical(self):
        """Every lookup a pre-precision caller made returns the same
        entry — same samples, same fit — through the migrated keys,
        and an fp16 lookup falls back to the fp32 characterisation."""
        import numpy as np

        db = self._load()
        raw = json.loads(_fixture_text("syndrome_db.json"))
        for item in raw["entries"]:
            opcode, input_range, module = item["key"]
            entry = db.lookup(opcode, input_range, module)
            assert entry.relative_errors == item["relative_errors"]
            assert entry.thread_counts == item["thread_counts"]
        # deterministic draws match a hand-built fp32-keyed database
        entry = db.lookup("FADD", "M")
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        draws_a = [entry.sample_relative_error(rng_a) for _ in range(32)]
        fallback = db.lookup("FADD", "M", precision="fp16")
        draws_b = [fallback.sample_relative_error(rng_b) for _ in range(32)]
        assert draws_a == draws_b


class TestFingerprints:
    def test_pinned_fingerprints_match(self):
        pinned = json.loads(_fixture_text("schema_fingerprints.json"))
        current = all_fingerprints()
        assert current == pinned, (
            "artifact schema bytes changed without a version bump; "
            "register a migration and re-pin schema_fingerprints.json")
