"""Serde edge cases: non-finite floats, empty artifacts, codec semantics."""

from __future__ import annotations

import json
import math

import pytest

from repro.artifacts import codec_for, dump_body, load_artifact
from repro.artifacts.serde import (
    Coerced,
    EnumCodec,
    OptionalCodec,
    Rounded,
    SequenceCodec,
    SortedIntMapCodec,
    derive,
)
from repro.errors import ArtifactError
from repro.outcomes import Outcome
from repro.rtl.classify import CorruptedValue
from repro.rtl.reports import (
    CampaignReport,
    DetailedRecord,
    FaultDescriptor,
    GeneralRecord,
)
from repro.swfi.campaign import PVFReport
from repro.syndrome.database import SyndromeDatabase
from repro.syndrome.records import SyndromeEntry, SyndromeKey

F32_INF = 0x7F800000
F32_NAN = 0x7FC00000


def _fault(i: int = 0) -> FaultDescriptor:
    return FaultDescriptor("fp32", "result", lane=i, bit=3, cycle=10 + i)


class TestNonFiniteFloats:
    """NaN/inf reach detailed data via zero-golden relative errors and
    non-finite f32 bit patterns; serialisation must not mangle them."""

    def _report_with_nonfinite_sdc(self) -> CampaignReport:
        report = CampaignReport("FADD", "M", "fp32", n_injections=1)
        record = DetailedRecord(
            fault=_fault(), opcode="FADD", input_range="M",
            value_kind="f32",
            corrupted=(CorruptedValue(0, 64, 0x00000000, F32_INF),
                       CorruptedValue(1, 65, 0x3F800000, F32_NAN)))
        report.general.append(GeneralRecord(_fault(), Outcome.SDC, 2, True))
        report.detailed.append(record)
        return report

    def test_detailed_record_round_trips(self):
        report = self._report_with_nonfinite_sdc()
        clone = CampaignReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()
        # the NaN/inf bit patterns survive exactly ...
        corrupted = clone.detailed[0].corrupted
        assert corrupted[0].faulty_bits == F32_INF
        assert corrupted[1].faulty_bits == F32_NAN
        # ... and both classify as non-finite (relative_error maps
        # non-finite observations to inf so callers can bucket them)
        errors = clone.detailed[0].relative_errors()
        assert math.isinf(errors[0])
        assert math.isinf(errors[1])

    def test_syndrome_entry_keeps_nan_and_inf(self):
        entry = SyndromeEntry(
            key=SyndromeKey("FADD", "M", "fp32"),
            relative_errors=[0.5, float("inf"), float("nan")],
            thread_counts=[1, 1, 1])
        payload = entry.to_dict()
        # json round-trip uses the non-strict literals NaN/Infinity
        clone = SyndromeEntry.from_dict(json.loads(json.dumps(payload)))
        assert clone.relative_errors[0] == 0.5
        assert math.isinf(clone.relative_errors[1])
        assert math.isnan(clone.relative_errors[2])
        # a finalize over non-finite samples must not crash or fit them
        clone.finalize()


class TestEmptyArtifacts:
    def test_empty_rtl_report(self):
        report = CampaignReport("FADD", "M", "fp32")
        clone = CampaignReport.from_dict(report.to_dict())
        assert len(clone.general) == 0
        assert len(clone.detailed) == 0
        assert clone.avf() == 0.0
        assert clone.mean_corrupted_threads() == 0.0
        assert clone.count_timeouts() == 0
        assert clone.to_dict() == report.to_dict()

    def test_empty_pvf_report(self):
        report = PVFReport(app_name="MxM", model_name="bitflip")
        clone = PVFReport.from_dict(report.to_dict())
        assert clone.pvf == 0.0
        assert clone.to_dict() == report.to_dict()

    def test_empty_dict_loads_as_empty_syndrome_db(self):
        db = SyndromeDatabase.from_dict({})
        assert db.entries() == []
        assert db.tmxm_entries() == []

    def test_empty_report_merge(self):
        merged = CampaignReport.merge(
            [CampaignReport("FADD", "M", "fp32"),
             CampaignReport("FADD", "M", "fp32")])
        assert merged.n_injections == 0
        assert len(merged.general) == 0


class TestCodecSemantics:
    def test_missing_required_field_raises_keyerror(self):
        with pytest.raises(KeyError):
            codec_for(FaultDescriptor).load({"module": "fp32"})

    def test_absent_defaulted_field_uses_dataclass_default(self):
        payload = {"module": "fp32", "register": "r", "lane": 1,
                   "bit": 2, "cycle": 3}
        fault = codec_for(FaultDescriptor).load(payload)
        assert fault.kind == "data"      # default, key absent

    def test_dump_preserves_declaration_order(self):
        payload = codec_for(FaultDescriptor).dump(_fault())
        assert list(payload) == ["module", "register", "lane", "bit",
                                 "cycle", "kind"]

    def test_enum_codec(self):
        codec = EnumCodec(Outcome)
        assert codec.dump(Outcome.SDC) == "sdc"
        assert codec.load("due") is Outcome.DUE

    def test_optional_codec_passes_none(self):
        codec = OptionalCodec(Coerced(int, int))
        assert codec.dump(None) is None
        assert codec.load(None) is None
        assert codec.load("7") == 7

    def test_sequence_codec_rebuilds_container(self):
        codec = SequenceCodec(Coerced(int, int), tuple)
        assert codec.load([1, 2]) == (1, 2)
        assert codec.dump((1, 2)) == [1, 2]

    def test_sorted_int_map_codec(self):
        codec = SortedIntMapCodec()
        assert list(codec.dump({"sdc": 2, "due": 1.0})) == ["due", "sdc"]
        assert codec.dump({"due": 1.0})["due"] == 1

    def test_rounded_codec(self):
        assert Rounded(2).dump(1.23456) == 1.23

    def test_derive_rejects_non_dataclass(self):
        with pytest.raises(ArtifactError, match="not a dataclass"):
            derive(int)

    def test_derive_rejects_underivable_hint(self):
        import dataclasses

        @dataclasses.dataclass
        class Odd:
            weird: complex

        with pytest.raises(ArtifactError, match="cannot derive"):
            derive(Odd)

    def test_general_record_round_trip_with_due_reason(self):
        record = GeneralRecord(_fault(), Outcome.DUE, 0, False,
                               due_reason="hang")
        payload = codec_for(GeneralRecord).dump(record)
        assert payload["outcome"] == "due"
        assert codec_for(GeneralRecord).load(payload) == record


class TestLoadBytesUnchanged:
    """dump_body must reproduce legacy bytes for live-built objects."""

    def test_live_report_add_path(self):
        from repro.rtl.classify import RunClassification

        report = CampaignReport("FADD", "M", "fp32")
        report.add(_fault(0),
                   RunClassification(Outcome.MASKED, fault_fired=False),
                   opcode="FADD", value_kind="f32")
        report.add(_fault(1),
                   RunClassification(
                       Outcome.SDC,
                       corrupted=[CorruptedValue(0, 64, 1, 3)]),
                   opcode="FADD", value_kind="f32")
        payload = report.to_dict()
        assert payload["n_injections"] == 2
        assert payload["general"][0]["fault_fired"] is False
        assert payload["general"][1]["outcome"] == "sdc"
        assert payload["detailed"][0]["corrupted"][0] == {
            "thread": 0, "address": 64,
            "golden_bits": 1, "faulty_bits": 3}
        assert load_artifact("rtl-report", payload).to_dict() == payload
        assert dump_body("rtl-report", report) == payload
