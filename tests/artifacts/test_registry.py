"""Registry behaviour: envelopes, version sniffing, migrations, errors."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import (
    ArtifactSchema,
    dump_artifact,
    dump_body,
    get_schema,
    load_artifact,
    load_artifact_file,
    register_schema,
    registered_kinds,
    save_artifact,
    schema_fingerprint,
)
from repro.errors import ArtifactError, CampaignError

BUILTIN_KINDS = ["rtl-report", "pvf-report", "syndrome-db",
                 "campaign-journal", "campaign-metrics", "job-record"]


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert set(BUILTIN_KINDS) <= set(registered_kinds())

    def test_unknown_kind(self):
        with pytest.raises(ArtifactError, match="unknown artifact kind"):
            get_schema("flux-capacitor")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ArtifactError, match="already registered"):
            register_schema(ArtifactSchema(
                kind="rtl-report", version=1, dump=dict, load=dict))

    def test_fingerprints_are_stable_across_calls(self):
        for kind in BUILTIN_KINDS:
            assert schema_fingerprint(kind) == schema_fingerprint(kind)


class TestEnvelope:
    def test_dump_artifact_wraps_body(self):
        sample = get_schema("pvf-report").sample()
        enveloped = dump_artifact("pvf-report", sample)
        assert enveloped["kind"] == "pvf-report"
        assert enveloped["version"] == 1
        body = dump_body("pvf-report", sample)
        assert {k: v for k, v in enveloped.items()
                if k not in ("kind", "version")} == body

    def test_enveloped_and_bare_load_identically(self):
        sample = get_schema("pvf-report").sample()
        bare = load_artifact("pvf-report", dump_body("pvf-report", sample))
        enveloped = load_artifact("pvf-report",
                                  dump_artifact("pvf-report", sample))
        assert bare.to_dict() == enveloped.to_dict()

    def test_body_owning_kind_key_nests(self):
        """A job record's own "kind" (the job type) never collides."""
        sample = get_schema("job-record").sample()
        enveloped = dump_artifact("job-record", sample)
        assert enveloped["kind"] == "job-record"
        assert enveloped["body"]["kind"] == "pvf"
        reloaded = load_artifact("job-record", enveloped)
        assert reloaded.to_dict() == sample.to_dict()

    def test_bare_body_with_foreign_kind_value_still_loads(self):
        sample = get_schema("job-record").sample()
        body = dump_body("job-record", sample)
        assert body["kind"] == "pvf"      # the job type, not a schema
        assert load_artifact("job-record", body).to_dict() == body

    def test_wrong_envelope_kind_rejected(self):
        sample = get_schema("pvf-report").sample()
        enveloped = dump_artifact("pvf-report", sample)
        with pytest.raises(ArtifactError,
                           match="expected a 'rtl-report' artifact"):
            load_artifact("rtl-report", enveloped)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ArtifactError, match="JSON object"):
            load_artifact("pvf-report", [1, 2, 3])

    def test_self_enveloped_metrics_not_double_wrapped(self):
        sample = get_schema("campaign-metrics").sample()
        enveloped = dump_artifact("campaign-metrics", sample)
        assert enveloped == dump_body("campaign-metrics", sample)
        assert enveloped["kind"] == "campaign-metrics"


class TestVersioning:
    def test_unversioned_legacy_payload_sniffs_to_v1(self):
        sample = get_schema("pvf-report").sample()
        body = dump_body("pvf-report", sample)
        assert "version" not in body
        assert load_artifact("pvf-report", body).to_dict() == body

    def test_future_version_rejected_with_upgrade_message(self):
        sample = get_schema("pvf-report").sample()
        enveloped = dump_artifact("pvf-report", sample)
        enveloped["version"] = 99
        with pytest.raises(ArtifactError) as excinfo:
            load_artifact("pvf-report", enveloped)
        message = str(excinfo.value)
        assert "schema version 99" in message
        assert "supports only versions <= 1" in message
        assert "upgrade" in message

    def test_future_metrics_version_rejected(self):
        payload = dict(dump_body("campaign-metrics",
                                 get_schema("campaign-metrics").sample()))
        payload["version"] = 7
        with pytest.raises(ArtifactError, match="supports only versions"):
            load_artifact("campaign-metrics", payload)


class TestMigrations:
    """A synthetic two-version kind exercises the migration chain."""

    @pytest.fixture(scope="class")
    def kind(self):
        name = "test-widget"
        if name not in registered_kinds():
            def migrate_1_to_2(payload):
                # v2 renamed "colour" -> "color"
                payload = dict(payload)
                payload["color"] = payload.pop("colour")
                return payload

            register_schema(ArtifactSchema(
                kind=name, version=2,
                dump=lambda obj: dict(obj),
                load=dict,
                migrations={1: migrate_1_to_2},
                sample=lambda: {"color": "red"}))
        return name

    def test_old_payload_migrates_stepwise(self, kind):
        loaded = load_artifact(kind, {"kind": kind, "version": 1,
                                      "colour": "red"})
        assert loaded == {"color": "red"}

    def test_current_payload_loads_directly(self, kind):
        loaded = load_artifact(kind, {"kind": kind, "version": 2,
                                      "color": "blue"})
        assert loaded == {"color": "blue"}

    def test_missing_migration_step_is_explicit(self):
        name = "test-gadget"
        if name not in registered_kinds():
            register_schema(ArtifactSchema(
                kind=name, version=3, dump=dict, load=dict,
                migrations={2: lambda p: p}))  # 1 -> 2 step missing
        with pytest.raises(ArtifactError,
                           match="no migration registered from "
                                 "test-gadget version 1 to 2"):
            load_artifact(name, {"kind": name, "version": 1})


class TestFiles:
    def test_save_and_load_artifact_file(self, tmp_path):
        sample = get_schema("pvf-report").sample()
        path = save_artifact(tmp_path / "report.json", "pvf-report",
                             sample, indent=2)
        assert json.loads(path.read_text())["kind"] == "pvf-report"
        # kind inferred from the envelope
        assert load_artifact_file(path).to_dict() == sample.to_dict()
        # explicit kind also accepted
        loaded = load_artifact_file(path, kind="pvf-report")
        assert loaded.to_dict() == sample.to_dict()

    def test_bare_file_requires_explicit_kind(self, tmp_path):
        sample = get_schema("pvf-report").sample()
        path = tmp_path / "bare.json"
        path.write_text(json.dumps(dump_body("pvf-report", sample)))
        with pytest.raises(ArtifactError, match="pass kind="):
            load_artifact_file(path)
        assert (load_artifact_file(path, kind="pvf-report").to_dict()
                == sample.to_dict())

    def test_unreadable_file_is_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot load artifact"):
            load_artifact_file(tmp_path / "missing.json",
                               kind="pvf-report")


class TestValidate:
    def test_metrics_validator_still_raises_campaign_error(self):
        from repro.campaign.telemetry import validate_metrics

        with pytest.raises(CampaignError, match="not a campaign-metrics"):
            validate_metrics({"kind": "something-else"})

    def test_valid_metrics_pass_through(self):
        payload = dump_body("campaign-metrics",
                            get_schema("campaign-metrics").sample())
        from repro.campaign.telemetry import validate_metrics

        assert validate_metrics(payload) is payload
