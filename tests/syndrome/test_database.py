"""Syndrome database tests."""

import pytest

from repro.errors import SyndromeDatabaseError
from repro.rng import make_rng
from repro.syndrome.database import SyndromeDatabase, range_for_value
from repro.syndrome.records import (
    SyndromeEntry,
    SyndromeKey,
    TmxmEntry,
)
from repro.syndrome.spatial import SpatialPattern


def _entry(opcode="FADD", input_range="M", module="fp32", value=0.5):
    entry = SyndromeEntry(SyndromeKey(opcode, input_range, module))
    entry.relative_errors = [value] * 20
    entry.thread_counts = [1] * 20
    entry.finalize()
    return entry


@pytest.fixture
def db():
    db = SyndromeDatabase()
    db.add(_entry("FADD", "M", "fp32", 0.5))
    db.add(_entry("FADD", "M", "pipeline", 0.7))
    db.add(_entry("FADD", "S", "fp32", 0.1))
    db.add(_entry("IADD", "L", "int", 2.0))
    tm = TmxmEntry("Random", "scheduler")
    tm.add_observation(SpatialPattern.ALL, [1.0] * 64)
    db.add_tmxm(tm)
    return db


class TestRangeMapping:
    def test_paper_boundaries(self):
        assert range_for_value(1e-6) == "S"
        assert range_for_value(7.3e-6) == "S"
        assert range_for_value(10.0) == "M"
        assert range_for_value(3.8e9) == "L"
        assert range_for_value(1e12) == "L"

    def test_sign_ignored(self):
        assert range_for_value(-5e9) == "L"


class TestLookup:
    def test_exact(self, db):
        entry = db.lookup("FADD", "M", "fp32")
        assert entry.key.module == "fp32"
        assert entry.key.input_range == "M"

    def test_unpinned_lookup_pools_modules(self, db):
        # with no module pinned the paper's "cocktail" pools every
        # module's observations for the opcode+range
        entry = db.lookup("FADD", "M")
        assert entry.key.module == "pooled"
        assert entry.n_samples == 40  # fp32 (20) + pipeline (20)
        assert db.lookup("FADD", "M") is entry  # cached

    def test_range_fallback(self, db):
        # IADD only has an L entry; an M query falls back to it
        entry = db.lookup("IADD", "M")
        assert entry.key.input_range == "L"

    def test_unknown_opcode_rejected(self, db):
        with pytest.raises(SyndromeDatabaseError):
            db.lookup("FMAX", "M")

    def test_unknown_module_rejected(self, db):
        with pytest.raises(SyndromeDatabaseError):
            db.lookup("FADD", "M", "tensor-core")

    def test_modules_for(self, db):
        assert db.modules_for("FADD") == ["fp32", "pipeline"]

    def test_sample_maps_operand_to_range(self, db):
        # the S entry's syndromes all sit at 0.1; samples come from its
        # power-law fit anchored there, never from the 0.5 M entry's floor
        values = [db.sample("FADD", 1e-7, make_rng(s)) for s in range(20)]
        assert min(values) >= 0.1       # anchored at the S entry's floor
        assert min(values) < 0.5        # and clearly not the M entry's

    def test_tmxm_lookup(self, db):
        entry = db.lookup_tmxm("Random", "scheduler")
        assert entry.total_occurrences == 1
        with pytest.raises(SyndromeDatabaseError):
            db.lookup_tmxm("Random", "pipeline")


class TestMerging:
    def test_add_merges_same_key(self, db):
        db.add(_entry("FADD", "M", "fp32", 0.9))
        entry = db.lookup("FADD", "M", "fp32")
        assert entry.n_samples == 40

    def test_tmxm_merge(self, db):
        tm = TmxmEntry("Random", "scheduler")
        tm.add_observation(SpatialPattern.ROW, [0.5] * 8)
        db.add_tmxm(tm)
        entry = db.lookup_tmxm("Random", "scheduler")
        assert entry.total_occurrences == 2


class TestPersistence:
    def test_save_load_roundtrip(self, db, tmp_path):
        path = tmp_path / "db.json"
        db.save(path)
        restored = SyndromeDatabase.load(path)
        assert len(restored.entries()) == len(db.entries())
        assert restored.lookup("FADD", "M", "fp32").relative_errors == \
            db.lookup("FADD", "M", "fp32").relative_errors
        assert restored.lookup_tmxm(
            "Random", "scheduler").total_occurrences == 1

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SyndromeDatabaseError):
            SyndromeDatabase.load(tmp_path / "missing.json")

    def test_load_malformed_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SyndromeDatabaseError):
            SyndromeDatabase.load(path)


class TestOpcodeIndex:
    def test_candidates_match_entries_order(self, db):
        # the index must preserve the sorted-key order entries() uses
        assert db._candidates("FADD") == [
            e for e in db.entries() if e.key.opcode == "FADD"]

    def test_add_invalidates_index(self, db):
        first = db.lookup("FADD", "M", module="fp32")
        assert first.key.module == "fp32"
        db.add(_entry("FADD", "M", "scheduler", 0.9))
        # a post-index add must be visible to the next lookup
        assert db.lookup("FADD", "M", module="scheduler").key.module == \
            "scheduler"
        assert {e.key.module for e in db._candidates("FADD")} == \
            {"fp32", "pipeline", "scheduler"}

    def test_add_to_existing_key_refreshes_index(self, db):
        before = db.lookup("IADD", "L", module="int").n_samples
        db.add(_entry("IADD", "L", "int", 3.0))
        assert db.lookup("IADD", "L", module="int").n_samples == \
            before + 20

    def test_index_results_are_copies(self, db):
        candidates = db._candidates("FADD")
        candidates.clear()  # mutating the return must not corrupt it
        assert db._candidates("FADD")
