"""Distribution-model comparison tests."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.rng import make_rng
from repro.syndrome.modelcmp import (
    compare_to_exponential,
    compare_to_lognormal,
    model_comparison_report,
)
from repro.syndrome.powerlaw import fit_power_law, sample_power_law


@pytest.fixture(scope="module")
def powerlaw_samples():
    return list(sample_power_law(2.2, 0.05, make_rng(0), 3000))


class TestLikelihoodRatio:
    def test_powerlaw_data_beats_exponential(self, powerlaw_samples):
        fit = fit_power_law(powerlaw_samples)
        result = compare_to_exponential(powerlaw_samples, fit)
        assert result.favors_power_law
        assert result.significant()

    def test_exponential_data_beats_powerlaw(self):
        data = list(0.05 + make_rng(1).exponential(0.02, 3000))
        fit = fit_power_law(data)
        result = compare_to_exponential(data, fit)
        assert not result.favors_power_law or not result.significant()

    def test_lognormal_comparison_runs(self, powerlaw_samples):
        fit = fit_power_law(powerlaw_samples)
        result = compare_to_lognormal(powerlaw_samples, fit)
        assert result.alternative == "lognormal"
        assert 0.0 <= result.p_value <= 1.0

    def test_ratio_and_statistic_agree_in_sign(self):
        # CSN: power law vs lognormal is often indeterminate on tails, so
        # only the internal consistency of the statistic is asserted
        data = list(np.exp(make_rng(2).normal(-2.0, 0.35, 3000)))
        fit = fit_power_law(data)
        result = compare_to_lognormal(data, fit)
        assert np.isfinite(result.normalized)
        if result.ratio != 0:
            assert (result.ratio > 0) == (result.normalized > 0)

    def test_requires_tail_samples(self):
        fit = fit_power_law(list(sample_power_law(
            2.0, 1.0, make_rng(3), 50)))
        with pytest.raises(ReproError):
            compare_to_lognormal([0.1] * 5, fit)

    def test_report(self, powerlaw_samples):
        text = model_comparison_report(powerlaw_samples)
        assert "vs lognormal" in text and "vs exponential" in text

    def test_shipped_syndromes_not_exponential(self, small_database):
        """Real RTL syndromes: heavy-tailed, never exponential-favoured."""
        entry = small_database.lookup("FADD", "M", "fp32")
        finite = [e for e in entry.relative_errors
                  if np.isfinite(e) and e > 0]
        if len(finite) >= 30:
            fit = fit_power_law(finite)
            result = compare_to_exponential(finite, fit)
            if result.significant():
                assert result.favors_power_law
