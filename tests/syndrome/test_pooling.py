"""Pooled (cocktail) lookup behaviour."""

import pytest

from repro.rng import make_rng
from repro.syndrome.database import SyndromeDatabase
from repro.syndrome.records import SyndromeEntry, SyndromeKey


def _entry(module, value, n=20):
    entry = SyndromeEntry(SyndromeKey("FMUL", "M", module))
    entry.relative_errors = [value] * n
    entry.thread_counts = [1] * n
    entry.finalize()
    return entry


class TestPooling:
    def test_pool_mixes_all_modules(self):
        db = SyndromeDatabase()
        db.add(_entry("fp32", 0.25))
        db.add(_entry("pipeline", 4.0))
        pooled = db.lookup("FMUL", "M")
        rng = make_rng(0)
        samples = {round(pooled.sample_relative_error(rng), 2)
                   for _ in range(60)}
        assert 0.25 in samples and 4.0 in samples

    def test_pool_cache_invalidated_on_add(self):
        db = SyndromeDatabase()
        db.add(_entry("fp32", 0.25))
        first = db.lookup("FMUL", "M")
        assert first.key.module == "fp32"  # single entry: no pooling
        db.add(_entry("scheduler", 9.0))
        pooled = db.lookup("FMUL", "M")
        assert pooled.key.module == "pooled"
        assert pooled.n_samples == 40

    def test_pinned_module_bypasses_pool(self):
        db = SyndromeDatabase()
        db.add(_entry("fp32", 0.25))
        db.add(_entry("pipeline", 4.0))
        entry = db.lookup("FMUL", "M", module="pipeline")
        assert entry.key.module == "pipeline"
        assert set(entry.relative_errors) == {4.0}

    def test_pool_weighting_is_by_observation_count(self):
        db = SyndromeDatabase()
        db.add(_entry("fp32", 0.25, n=90))
        db.add(_entry("pipeline", 4.0, n=10))
        pooled = db.lookup("FMUL", "M")
        rng = make_rng(1)
        big = sum(pooled.sample_relative_error(rng) > 1.0
                  for _ in range(400))
        assert 15 <= big <= 90  # ~10% of draws, by sample share
