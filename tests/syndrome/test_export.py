"""CSV interchange tests."""

import pytest

from repro.errors import SyndromeDatabaseError
from repro.syndrome.export import export_csv, import_csv


class TestCsvInterchange:
    def test_roundtrip_samples(self, small_database, tmp_path):
        syndromes, tmxm = export_csv(small_database, tmp_path)
        assert syndromes.exists() and tmxm.exists()
        restored = import_csv(tmp_path)
        for entry in small_database.entries():
            twin = restored.lookup(entry.key.opcode, entry.key.input_range,
                                   entry.key.module)
            assert sorted(twin.relative_errors) == \
                sorted(float(e) for e in entry.relative_errors)

    def test_tmxm_patterns_preserved(self, small_database, tmp_path):
        export_csv(small_database, tmp_path)
        restored = import_csv(tmp_path)
        for entry in small_database.tmxm_entries():
            twin = restored.lookup_tmxm(entry.tile_kind, entry.module)
            assert set(twin.patterns) == set(entry.patterns)

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SyndromeDatabaseError):
            import_csv(tmp_path / "nothing")

    def test_restored_database_usable_by_models(self, small_database,
                                                tmp_path):
        from repro.apps import MatrixMultiply
        from repro.swfi import RelativeErrorSyndrome, run_pvf_campaign

        export_csv(small_database, tmp_path)
        restored = import_csv(tmp_path)
        report = run_pvf_campaign(
            MatrixMultiply(n=16, tile=8, seed=0),
            RelativeErrorSyndrome(restored), 25, seed=1)
        assert report.n_injections == 25
