"""CSV interchange tests."""

import pytest

from repro.errors import SyndromeDatabaseError
from repro.syndrome.export import export_csv, import_csv


class TestCsvInterchange:
    def test_roundtrip_samples(self, small_database, tmp_path):
        syndromes, tmxm = export_csv(small_database, tmp_path)
        assert syndromes.exists() and tmxm.exists()
        restored = import_csv(tmp_path)
        for entry in small_database.entries():
            twin = restored.lookup(entry.key.opcode, entry.key.input_range,
                                   entry.key.module)
            assert sorted(twin.relative_errors) == \
                sorted(float(e) for e in entry.relative_errors)

    def test_tmxm_patterns_preserved(self, small_database, tmp_path):
        export_csv(small_database, tmp_path)
        restored = import_csv(tmp_path)
        for entry in small_database.tmxm_entries():
            twin = restored.lookup_tmxm(entry.tile_kind, entry.module)
            assert set(twin.patterns) == set(entry.patterns)

    def test_precision_keys_roundtrip(self, tmp_path):
        from repro.syndrome.database import SyndromeDatabase
        from repro.syndrome.records import SyndromeEntry, SyndromeKey

        database = SyndromeDatabase()
        for precision, errors in (("fp32", [0.25, 0.5]),
                                  ("fp16", [0.75, 1.0])):
            entry = SyndromeEntry(
                SyndromeKey("FADD", "M", "fp32" if precision == "fp32"
                            else precision, precision))
            entry.relative_errors.extend(errors)
            entry.thread_counts.extend([1] * len(errors))
            entry.finalize()
            database.add(entry)
        export_csv(database, tmp_path)
        header = (tmp_path / "syndromes.csv").read_text().splitlines()[0]
        assert "precision" in header.split(",")
        restored = import_csv(tmp_path)
        fp16 = restored.lookup("FADD", "M", precision="fp16")
        assert fp16.key.precision == "fp16"
        assert sorted(fp16.relative_errors) == [0.75, 1.0]
        fp32 = restored.lookup("FADD", "M", precision="fp32")
        assert sorted(fp32.relative_errors) == [0.25, 0.5]

    def test_legacy_csv_without_precision_column(self, tmp_path):
        (tmp_path / "syndromes.csv").write_text(
            "opcode,input_range,module,relative_error\n"
            "FMUL,S,fp32,0.5\n"
            "FMUL,S,fp32,0.125\n")
        restored = import_csv(tmp_path)
        entry = restored.lookup("FMUL", "S")
        assert entry.key.precision == "fp32"
        assert sorted(entry.relative_errors) == [0.125, 0.5]

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(SyndromeDatabaseError):
            import_csv(tmp_path / "nothing")

    def test_restored_database_usable_by_models(self, small_database,
                                                tmp_path):
        from repro.apps import MatrixMultiply
        from repro.swfi import RelativeErrorSyndrome, run_pvf_campaign

        export_csv(small_database, tmp_path)
        restored = import_csv(tmp_path)
        report = run_pvf_campaign(
            MatrixMultiply(n=16, tile=8, seed=0),
            RelativeErrorSyndrome(restored), 25, seed=1)
        assert report.n_injections == 25
