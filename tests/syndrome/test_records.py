"""Syndrome entry / t-MxM entry tests."""

import numpy as np
import pytest

from repro.rng import make_rng
from repro.syndrome.powerlaw import sample_power_law
from repro.syndrome.records import (
    PatternStats,
    SyndromeEntry,
    SyndromeKey,
    TmxmEntry,
)
from repro.syndrome.spatial import SpatialPattern


def _entry(n=200, alpha=2.5):
    entry = SyndromeEntry(SyndromeKey("FADD", "M", "fp32"))
    entry.relative_errors = list(
        sample_power_law(alpha, 0.01, make_rng(1), n))
    entry.thread_counts = [1] * n
    entry.finalize()
    return entry


class TestSyndromeEntry:
    def test_finalize_fits_power_law(self):
        entry = _entry()
        assert entry.fit is not None
        assert entry.fit.alpha == pytest.approx(2.5, rel=0.3)

    def test_small_entry_has_no_fit(self):
        entry = SyndromeEntry(SyndromeKey("FADD", "M", "fp32"))
        entry.relative_errors = [0.1, 0.2]
        entry.finalize()
        assert entry.fit is None

    def test_sampling_uses_fit(self):
        entry = _entry()
        samples = [entry.sample_relative_error(make_rng(2))
                   for _ in range(100)]
        assert all(s >= entry.fit.x_min for s in samples)

    def test_sampling_falls_back_to_empirical(self):
        entry = SyndromeEntry(SyndromeKey("FADD", "M", "fp32"))
        entry.relative_errors = [0.5, 0.7]
        assert entry.sample_relative_error(make_rng(0)) in (0.5, 0.7)

    def test_empty_entry_sampling_rejected(self):
        entry = SyndromeEntry(SyndromeKey("FADD", "M", "fp32"))
        with pytest.raises(ValueError):
            entry.sample_relative_error(make_rng(0))

    def test_histogram_fractions_sum_to_one(self):
        entry = _entry()
        fractions = entry.histogram([0.0, 0.01, 0.1, 1.0, 1e6])
        assert sum(fractions) == pytest.approx(1.0)

    def test_median(self):
        entry = SyndromeEntry(SyndromeKey("FADD", "M", "fp32"))
        entry.relative_errors = [0.1, 0.2, 0.3]
        assert entry.median_relative_error() == pytest.approx(0.2)

    def test_serialization_roundtrip(self):
        entry = _entry()
        restored = SyndromeEntry.from_dict(entry.to_dict())
        assert restored.key == entry.key
        assert restored.relative_errors == entry.relative_errors
        assert restored.fit == entry.fit


class TestTmxmEntry:
    def _entry(self):
        entry = TmxmEntry("Random", "scheduler")
        rng = make_rng(3)
        for _ in range(30):
            entry.add_observation(
                SpatialPattern.ROW,
                list(sample_power_law(2.0, 0.1, rng, 8)))
        for _ in range(10):
            entry.add_observation(
                SpatialPattern.ALL,
                list(sample_power_law(2.0, 0.1, rng, 64)))
        entry.finalize()
        return entry

    def test_pattern_distribution(self):
        entry = self._entry()
        dist = entry.pattern_distribution()
        assert dist[SpatialPattern.ROW] == pytest.approx(0.75)
        assert dist[SpatialPattern.ALL] == pytest.approx(0.25)

    def test_sample_pattern_proportional(self):
        entry = self._entry()
        rng = make_rng(4)
        rows = sum(entry.sample_pattern(rng) is SpatialPattern.ROW
                   for _ in range(1000))
        assert 650 <= rows <= 850

    def test_sample_relative_error_per_pattern(self):
        entry = self._entry()
        value = entry.sample_relative_error(SpatialPattern.ROW, make_rng(5))
        assert value > 0

    def test_empty_entry_rejected(self):
        entry = TmxmEntry("Zero", "pipeline")
        with pytest.raises(ValueError):
            entry.sample_pattern(make_rng(0))

    def test_serialization_roundtrip(self):
        entry = self._entry()
        restored = TmxmEntry.from_dict(entry.to_dict())
        assert restored.tile_kind == "Random"
        assert restored.pattern_distribution() == \
            entry.pattern_distribution()
        assert (restored.patterns[SpatialPattern.ROW].fit
                == entry.patterns[SpatialPattern.ROW].fit)
