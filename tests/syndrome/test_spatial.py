"""Spatial-pattern classification and generation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import make_rng
from repro.syndrome.spatial import (
    SpatialPattern,
    classify_pattern,
    generate_pattern,
)

DIM = 8


class TestClassification:
    def test_single(self):
        assert classify_pattern([(3, 4)], DIM) is SpatialPattern.SINGLE

    def test_row(self):
        cells = [(2, j) for j in range(5)]
        assert classify_pattern(cells, DIM) is SpatialPattern.ROW

    def test_column(self):
        cells = [(i, 6) for i in range(4)]
        assert classify_pattern(cells, DIM) is SpatialPattern.COLUMN

    def test_row_plus_column(self):
        cells = [(2, j) for j in range(DIM)] + [(i, 5) for i in range(DIM)]
        assert classify_pattern(cells, DIM) is SpatialPattern.ROW_COLUMN

    def test_block(self):
        cells = [(i, j) for i in range(2, 5) for j in range(1, 4)]
        assert classify_pattern(cells, DIM) is SpatialPattern.BLOCK

    def test_all(self):
        cells = [(i, j) for i in range(DIM) for j in range(DIM)]
        assert classify_pattern(cells, DIM) is SpatialPattern.ALL

    def test_almost_all_counts_as_all(self):
        cells = [(i, j) for i in range(DIM) for j in range(DIM)][:-2]
        assert classify_pattern(cells, DIM) is SpatialPattern.ALL

    def test_scattered_is_random(self):
        cells = [(0, 0), (3, 5), (6, 2)]
        assert classify_pattern(cells, DIM) is SpatialPattern.RANDOM

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            classify_pattern([], DIM)

    def test_out_of_tile_rejected(self):
        with pytest.raises(ValueError):
            classify_pattern([(0, DIM)], DIM)


class TestGeneration:
    @pytest.mark.parametrize("pattern", list(SpatialPattern))
    def test_generated_patterns_classify_back(self, pattern):
        rng = make_rng(42)
        for _ in range(25):
            coords = generate_pattern(pattern, DIM, rng)
            assert classify_pattern(coords, DIM) is pattern

    @given(st.integers(min_value=6, max_value=16), st.integers(0, 1000))
    @settings(max_examples=60)
    def test_roundtrip_across_dims(self, dim, seed):
        rng = make_rng(seed)
        for pattern in SpatialPattern:
            coords = generate_pattern(pattern, dim, rng)
            assert classify_pattern(coords, dim) is pattern

    def test_coordinates_inside_tile(self):
        rng = make_rng(1)
        for pattern in SpatialPattern:
            for i, j in generate_pattern(pattern, DIM, rng):
                assert 0 <= i < DIM and 0 <= j < DIM
