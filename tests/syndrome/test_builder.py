"""Builder tests: campaign reports -> syndrome database."""

import pytest

from repro.rtl.classify import (
    CorruptedValue,
    Outcome,
    RunClassification,
)
from repro.rtl.reports import CampaignReport, FaultDescriptor
from repro.gpu.bits import float_to_bits
from repro.syndrome.builder import (
    build_database,
    entry_from_report,
    tmxm_entry_from_report,
)
from repro.syndrome.spatial import SpatialPattern


def _fault():
    return FaultDescriptor("fp32", "reg", 0, 0, 0)


def _float_sdc(threads):
    corrupted = [
        CorruptedValue(t, 0x200 + t, float_to_bits(2.0), float_to_bits(3.0))
        for t in threads
    ]
    return RunClassification(Outcome.SDC, corrupted)


class TestEntryFromReport:
    def test_relative_errors_collected(self):
        report = CampaignReport("FADD", "M", "fp32")
        report.add(_fault(), _float_sdc([0]), "FADD", "f32")
        report.add(_fault(), _float_sdc([1, 2]), "FADD", "f32")
        report.add(_fault(), RunClassification(Outcome.MASKED),
                   "FADD", "f32")
        entry = entry_from_report(report)
        assert entry.key.opcode == "FADD"
        assert entry.relative_errors == [0.5, 0.5, 0.5]
        assert entry.thread_counts == [1, 2]

    def test_nan_outputs_become_inf_sentinel(self):
        report = CampaignReport("FADD", "M", "fp32")
        corrupted = [CorruptedValue(0, 0x200, float_to_bits(2.0),
                                    0x7FC00000)]
        report.add(_fault(), RunClassification(Outcome.SDC, corrupted),
                   "FADD", "f32")
        entry = entry_from_report(report)
        assert entry.relative_errors == [1e6]


class TestTmxmEntryFromReport:
    def test_patterns_classified(self):
        report = CampaignReport("FFMA", "Random", "scheduler")
        # a full row of tile coordinates: threads 8..15 are row 1
        report.add(_fault(), _float_sdc(range(8, 16)), "FFMA", "f32")
        report.add(_fault(), _float_sdc([0]), "FFMA", "f32")
        entry = tmxm_entry_from_report(report)
        assert entry.tile_kind == "Random"
        assert entry.patterns[SpatialPattern.ROW].occurrences == 1
        assert entry.patterns[SpatialPattern.SINGLE].occurrences == 1


class TestBuildDatabase:
    def test_end_to_end(self, small_reports, small_tmxm_reports):
        db = build_database(small_reports, small_tmxm_reports)
        entry = db.lookup("FADD", "M", "fp32")
        assert entry.n_samples > 0
        tm = db.lookup_tmxm("Random", "scheduler")
        assert tm.total_occurrences > 0

    def test_observed_syndromes_are_not_gaussian(self, small_database):
        """Paper Sec. V-C: Shapiro-Wilk rejects normality everywhere."""
        from repro.syndrome.powerlaw import is_gaussian

        entry = small_database.lookup("FADD", "M", "fp32")
        if entry.n_samples >= 20:
            assert not is_gaussian(entry.relative_errors)

    def test_fu_entries_single_thread(self, small_database):
        entry = small_database.lookup("FADD", "M", "fp32")
        assert all(count == 1 for count in entry.thread_counts)
