"""Power-law fitting and sampling tests (paper Eq. 1, CSN method)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.rng import make_rng
from repro.syndrome.powerlaw import (
    PowerLawFit,
    fit_power_law,
    is_gaussian,
    ks_distance,
    sample_power_law,
)


class TestSampler:
    def test_eq1_inverse_cdf(self):
        """The sampler implements the paper's Eq. (1) literally."""
        rng = make_rng(0)
        r = rng.random(5)
        rng2 = make_rng(0)
        samples = sample_power_law(2.5, 0.1, rng2, 5)
        expected = 0.1 * (1 - r) ** (-1 / (2.5 - 1))
        assert np.allclose(samples, expected)

    def test_samples_bounded_below_by_xmin(self):
        samples = sample_power_law(3.0, 0.5, make_rng(1), 1000)
        assert samples.min() >= 0.5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            sample_power_law(1.0, 0.1, make_rng(0))
        with pytest.raises(ValueError):
            sample_power_law(2.0, 0.0, make_rng(0))

    @given(st.floats(min_value=1.5, max_value=4.0),
           st.floats(min_value=1e-6, max_value=10.0))
    @settings(max_examples=50)
    def test_median_matches_theory(self, alpha, x_min):
        samples = sample_power_law(alpha, x_min, make_rng(7), 4000)
        theoretical = x_min * 2 ** (1 / (alpha - 1))
        assert np.median(samples) == pytest.approx(theoretical, rel=0.25)


class TestFitting:
    @pytest.mark.parametrize("alpha", [1.8, 2.5, 3.5])
    def test_recovers_alpha(self, alpha):
        samples = sample_power_law(alpha, 0.01, make_rng(3), 3000)
        fit = fit_power_law(samples)
        assert fit.alpha == pytest.approx(alpha, rel=0.15)

    def test_requires_enough_samples(self):
        with pytest.raises(ReproError):
            fit_power_law([1.0, 2.0])

    def test_ignores_nonpositive_and_nan(self):
        samples = list(sample_power_law(2.5, 0.1, make_rng(4), 500))
        samples += [0.0, -1.0, float("nan")]
        fit = fit_power_law(samples)
        assert fit.alpha > 1.0

    def test_degenerate_constant_data(self):
        fit = fit_power_law([0.5] * 50)
        assert fit.x_min == 0.5
        assert fit.alpha > 1.0

    def test_fit_sampling_roundtrip(self):
        fit = PowerLawFit(alpha=2.2, x_min=0.05, n_tail=100, ks=0.01)
        samples = fit.sample(make_rng(5), 2000)
        refit = fit_power_law(samples)
        assert refit.alpha == pytest.approx(2.2, rel=0.2)

    def test_serialization(self):
        fit = PowerLawFit(2.0, 0.1, 50, 0.05)
        assert PowerLawFit.from_dict(fit.to_dict()) == fit


class TestKsDistance:
    def test_zero_for_model_cdf_quantiles(self):
        # evaluate at exact model quantiles: distance bounded by 1/n
        alpha, x_min, n = 2.5, 0.1, 1000
        q = (np.arange(1, n + 1) - 0.5) / n
        tail = x_min * (1 - q) ** (-1 / (alpha - 1))
        assert ks_distance(tail, alpha, x_min) < 2.0 / n + 1e-9

    def test_large_for_wrong_model(self):
        samples = sample_power_law(3.5, 0.1, make_rng(6), 1000)
        assert ks_distance(samples, 1.2, 0.1) > 0.2


class TestGaussianCheck:
    def test_normal_data_is_gaussian(self):
        data = make_rng(7).normal(10.0, 2.0, 500)
        assert is_gaussian(data)

    def test_power_law_data_is_not_gaussian(self):
        """The paper's Shapiro-Wilk result: syndromes are not normal."""
        data = sample_power_law(1.8, 0.01, make_rng(8), 500)
        assert not is_gaussian(data)

    def test_constant_data_is_not_gaussian(self):
        assert not is_gaussian([1.0] * 100)

    def test_requires_three_samples(self):
        with pytest.raises(ReproError):
            is_gaussian([1.0, 2.0])


class TestCdf:
    def test_clamped_to_zero_below_xmin(self):
        fit = PowerLawFit(alpha=2.5, x_min=1.0, n_tail=100, ks=0.01)
        below = fit.cdf(np.array([0.0, 0.5, 0.999]))
        assert np.all(below == 0.0)

    def test_no_nan_for_nonpositive_inputs(self):
        fit = PowerLawFit(alpha=2.5, x_min=1.0, n_tail=100, ks=0.01)
        values = fit.cdf(np.array([-3.0, -1e-9, 0.0]))
        assert not np.any(np.isnan(values))
        assert np.all(values == 0.0)

    def test_monotone_and_bounded(self):
        fit = PowerLawFit(alpha=2.5, x_min=1.0, n_tail=100, ks=0.01)
        xs = np.linspace(0.0, 50.0, 500)
        cdf = fit.cdf(xs)
        assert np.all(np.diff(cdf) >= 0)
        assert np.all((cdf >= 0.0) & (cdf < 1.0))
        assert fit.cdf(np.array([1.0]))[0] == 0.0  # continuous at x_min
