"""FP32 functional-unit tests: fault-free bit-exactness and fault behaviour."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.bits import bits_to_float, float_to_bits
from repro.gpu.fault_plane import FaultPlane, FlipFlop, TransientFault
from repro.gpu.fp32 import FP32Unit


@pytest.fixture(scope="module")
def unit():
    return FP32Unit(FaultPlane())


def _normal_or_zero(value: float) -> bool:
    """The unit flushes denormals (FTZ); restrict checks accordingly."""
    return math.isfinite(value) and (value == 0.0 or abs(value) >= 2**-126)


finite_floats = st.floats(width=32, allow_nan=False, allow_infinity=False)


class TestFaddExactness:
    @given(finite_floats, finite_floats)
    @settings(max_examples=400)
    def test_matches_numpy_float32(self, a, b):
        unit = FP32Unit(FaultPlane())
        if not (_normal_or_zero(a) and _normal_or_zero(b)):
            return
        with np.errstate(over="ignore", under="ignore"):
            expected = float(np.float32(a) + np.float32(b))
        if not _normal_or_zero(expected):
            return
        got = bits_to_float(unit.fadd(float_to_bits(a), float_to_bits(b), 0))
        assert float_to_bits(got) == float_to_bits(expected)

    def test_subtract_with_sticky_rounding(self, unit):
        # exp_diff >= 3 with nonzero shifted-out bits: the sticky-borrow path
        a = bits_to_float(0x40000001)  # slightly above 2
        b = bits_to_float(0xBB800001)  # approx -0.0039...
        expected = float(np.float32(a) + np.float32(b))
        got = bits_to_float(unit.fadd(float_to_bits(a), float_to_bits(b), 0))
        assert got == expected

    def test_full_cancellation_gives_positive_zero(self, unit):
        got = unit.fadd(float_to_bits(1.5), float_to_bits(-1.5), 0)
        assert got == 0x00000000

    def test_negative_zero_sum(self, unit):
        got = unit.fadd(float_to_bits(-0.0), float_to_bits(-0.0), 0)
        assert got == 0x80000000

    def test_overflow_to_infinity(self, unit):
        big = float_to_bits(3e38)
        assert unit.fadd(big, big, 0) == 0x7F800000

    def test_underflow_flushes_to_zero(self, unit):
        tiny = float_to_bits(2**-126)
        neg = float_to_bits(-(2**-126) * 1.5)
        result = bits_to_float(unit.fadd(tiny, neg, 0))
        assert result == 0.0  # true result is denormal; G80 flushes


class TestFmulExactness:
    @given(finite_floats, finite_floats)
    @settings(max_examples=400)
    def test_matches_numpy_float32(self, a, b):
        unit = FP32Unit(FaultPlane())
        if not (_normal_or_zero(a) and _normal_or_zero(b)):
            return
        with np.errstate(over="ignore", under="ignore"):
            expected = float(np.float32(a) * np.float32(b))
        if not _normal_or_zero(expected):
            return
        got = bits_to_float(unit.fmul(float_to_bits(a), float_to_bits(b), 0))
        assert float_to_bits(got) == float_to_bits(expected)

    def test_sign_of_zero_product(self, unit):
        got = unit.fmul(float_to_bits(-1.0), float_to_bits(0.0), 0)
        assert got == 0x80000000

    def test_overflow(self, unit):
        big = float_to_bits(2e38)
        assert unit.fmul(big, big, 0) == 0x7F800000


class TestFfma:
    @given(finite_floats, finite_floats, finite_floats)
    @settings(max_examples=400)
    def test_single_rounding_vs_float64_reference(self, a, b, c):
        unit = FP32Unit(FaultPlane())
        if not all(_normal_or_zero(v) for v in (a, b, c)):
            return
        exact = (np.float64(np.float32(a)) * np.float64(np.float32(b))
                 + np.float64(np.float32(c)))
        with np.errstate(over="ignore", under="ignore"):
            expected = float(np.float32(exact))
        if not _normal_or_zero(expected) or expected == 0.0:
            return
        got = bits_to_float(unit.ffma(
            float_to_bits(a), float_to_bits(b), float_to_bits(c), 0))
        # the float64 reference can double-round; allow 1 ulp
        assert abs(int(float_to_bits(got)) - int(float_to_bits(expected))) <= 1

    def test_fused_beats_separate_rounding(self, unit):
        # choose values where mul-then-add loses the low product bits
        a, b = 1.0 + 2**-12, 1.0 + 2**-12
        c = -1.0
        fused = bits_to_float(unit.ffma(
            float_to_bits(a), float_to_bits(b), float_to_bits(c), 0))
        exact = (np.float64(np.float32(a)) * np.float64(np.float32(b))
                 + np.float64(np.float32(c)))
        assert fused == pytest.approx(float(exact), rel=1e-6)

    def test_zero_addend_equals_fmul(self, unit):
        a, b = float_to_bits(1.7), float_to_bits(-2.3)
        assert unit.ffma(a, b, 0, 0) == unit.fmul(a, b, 0)


class TestSpecialValues:
    def test_nan_propagates(self, unit):
        nan = 0x7FC00000
        one = float_to_bits(1.0)
        assert math.isnan(bits_to_float(unit.fadd(nan, one, 0)))
        assert math.isnan(bits_to_float(unit.fmul(nan, one, 0)))
        assert math.isnan(bits_to_float(unit.ffma(nan, one, one, 0)))

    def test_inf_minus_inf_is_nan(self, unit):
        inf = 0x7F800000
        ninf = 0xFF800000
        assert math.isnan(bits_to_float(unit.fadd(inf, ninf, 0)))

    def test_inf_times_zero_is_nan(self, unit):
        assert math.isnan(bits_to_float(unit.fmul(0x7F800000, 0, 0)))

    def test_inf_arithmetic(self, unit):
        inf = 0x7F800000
        one = float_to_bits(1.0)
        assert unit.fadd(inf, one, 0) == inf
        assert unit.fmul(inf, one, 0) == inf

    def test_denormal_inputs_flushed(self, unit):
        denormal = 0x00000001  # smallest positive denormal
        one = float_to_bits(1.0)
        assert bits_to_float(unit.fadd(denormal, one, 0)) == 1.0


class TestFaultInjection:
    def _run_with_fault(self, register, bit, a=1.5, b=2.5):
        plane = FaultPlane()
        unit = FP32Unit(plane)
        ff = FlipFlop("fp32", register, _width(unit, register), 0, "data")
        plane.arm(TransientFault(ff, bit, cycle=0, window=10))
        result = unit.fadd(float_to_bits(a), float_to_bits(b), 0)
        return bits_to_float(result), plane.disarm()

    def test_sign_bit_fault_flips_operand_sign(self):
        got, fault = self._run_with_fault("unpack.a_sign", 0)
        assert fault.fired
        assert got == pytest.approx(2.5 - 1.5)

    def test_exponent_fault_scales_by_power_of_two(self):
        got, fault = self._run_with_fault("unpack.a_exp", 0, a=2.0, b=0.0)
        assert fault.fired
        # flipping exp bit 0 of 2.0 (exp=128) gives exp=129 -> 4.0
        assert got == pytest.approx(4.0)

    def test_mantissa_low_bit_fault_is_small(self):
        # bit 2 of 1.5's mantissa is one ulp of the 4.0 result: visible
        # but tiny (lower bits would be rounded away entirely)
        got, fault = self._run_with_fault("unpack.a_mant", 2)
        assert fault.fired
        assert abs(got - 4.0) < 1e-5 and got != 4.0

    def test_mantissa_quarter_ulp_fault_rounds_away(self):
        got, fault = self._run_with_fault("unpack.a_mant", 0)
        assert fault.fired
        assert got == 4.0  # masked by rounding: the paper's FU masking

    def test_fault_on_other_lane_does_not_fire(self):
        plane = FaultPlane()
        unit = FP32Unit(plane)
        ff = FlipFlop("fp32", "unpack.a_sign", 1, 3, "data")
        plane.arm(TransientFault(ff, 0, cycle=0, window=10))
        result = unit.fadd(float_to_bits(1.5), float_to_bits(2.5), 0)
        assert bits_to_float(result) == 4.0
        assert not plane.disarm().fired

    def test_fault_run_never_crashes(self):
        # corrupted intermediates must degrade into values, not exceptions
        plane = FaultPlane()
        unit = FP32Unit(plane)
        rng = np.random.default_rng(0)
        flipflops = plane.flipflops("fp32")
        for _ in range(200):
            ff = flipflops[rng.integers(len(flipflops))]
            if ff.lane != 0:
                continue
            fault = TransientFault(ff, int(rng.integers(ff.width)),
                                   cycle=0, window=100)
            plane.arm(fault)
            unit.ffma(float_to_bits(1.5), float_to_bits(-0.75),
                      float_to_bits(12.0), 0)
            plane.disarm()


def _width(unit, register):
    for name, width, _ in unit._REGISTERS:
        if name == register:
            return width
    raise KeyError(register)
