"""Assembler / disassembler tests."""

import numpy as np
import pytest

from repro.gpu.asm import AssemblyError, assemble, disassemble
from repro.gpu.bits import float_to_bits
from repro.gpu.isa import CompareOp, Opcode, OperandKind
from repro.gpu.sm import StreamingMultiprocessor

FADD_BENCH = """
// FADD micro-benchmark body
    GLD   R2, [R0 + 0x80]
    GLD   R3, [R0 + 0x100]
    FADD  R5, R2, R3
    GST   [R0 + 0x200], R5
    EXIT
"""

LOOP = """
    MOV R1, 0
loop:
    IADD R1, R1, 1
    ISET.LT P0, R1, 5
    @P0 BRA loop
    GST [R0 + 0x300], R1
    EXIT
"""


class TestAssemble:
    def test_basic_program(self):
        program = assemble(FADD_BENCH)
        assert len(program) == 5
        assert program[0].opcode is Opcode.GLD
        assert program[0].offset == 0x80
        assert program[2].opcode is Opcode.FADD
        assert program[3].srcs[1].value == 5  # R5 is the store data

    def test_labels_and_predication(self):
        program = assemble(LOOP)
        assert program.resolve("loop") == 1
        bra = program[3]
        assert bra.predicate is not None and not bra.predicate_negated
        iset = program[2]
        assert iset.compare is CompareOp.LT
        assert iset.dest.kind is OperandKind.PREDICATE

    def test_negated_predicate(self):
        program = assemble("@!P1 MOV R1, R2\nEXIT")
        assert program[0].predicate_negated

    def test_immediates(self):
        program = assemble("MOV R1, 0x1F\nIADD R2, R1, -3\nEXIT")
        assert program[0].srcs[0].value == 0x1F
        assert program[1].srcs[1].value == (-3) & 0xFFFFFFFF

    def test_comments_and_blanks(self):
        program = assemble("# comment\n\nNOP // inline\nEXIT")
        assert len(program) == 2

    def test_three_source_ops(self):
        program = assemble("FFMA R4, R1, R2, R3\nIMAD R5, R1, 8, R0\nEXIT")
        assert len(program[0].srcs) == 3
        assert program[1].srcs[1].value == 8

    def test_errors(self):
        with pytest.raises(AssemblyError):
            assemble("FROB R1, R2\nEXIT")          # unknown mnemonic
        with pytest.raises(AssemblyError):
            assemble("FADD R1, R2\nEXIT")          # wrong arity
        with pytest.raises(AssemblyError):
            assemble("ISET R1, R2, R3\nEXIT")      # missing relation
        with pytest.raises(AssemblyError):
            assemble("BRA nowhere\nEXIT")          # undefined label
        with pytest.raises(AssemblyError):
            assemble("NOP")                        # missing EXIT
        with pytest.raises(AssemblyError):
            assemble("x:\nx:\nEXIT")               # duplicate label
        with pytest.raises(AssemblyError):
            assemble("GLD R1, R2\nEXIT")           # not a memory operand

    def test_assembled_program_executes(self):
        program = assemble(FADD_BENCH)
        sm = StreamingMultiprocessor()
        image = {0x80: [float_to_bits(1.5)] * 8,
                 0x100: [float_to_bits(2.0)] * 8}
        result = sm.launch(program, 8, memory_image=image)
        assert result.memory.read_floats(0x200, 8) == [3.5] * 8

    def test_assembled_loop_executes(self):
        program = assemble(LOOP)
        sm = StreamingMultiprocessor()
        result = sm.launch(program, 8)
        assert result.memory.read_words(0x300, 8) == [5] * 8


class TestDisassemble:
    @pytest.mark.parametrize("source", [FADD_BENCH, LOOP])
    def test_roundtrip(self, source):
        program = assemble(source)
        text = disassemble(program)
        again = assemble(text)
        assert again.instructions == program.instructions
        assert again.labels == program.labels

    def test_microbench_programs_roundtrip(self):
        from repro.rtl import make_microbenchmark
        from repro.gpu.isa import CHARACTERIZED_OPCODES

        for opcode in CHARACTERIZED_OPCODES:
            program = make_microbenchmark(opcode, "M").program
            again = assemble(disassemble(program))
            assert again.instructions == program.instructions

    def test_tmxm_roundtrip(self):
        from repro.rtl import make_tmxm_bench

        program = make_tmxm_bench("Random").program
        again = assemble(disassemble(program))
        assert again.instructions == program.instructions
