"""Fault-model hierarchy tests: stuck-at, burst, span checks, serde."""

import pytest

from repro.gpu.fault_plane import (
    FAULT_MODELS,
    FaultPlane,
    FlipFlop,
    StuckAtFault,
    TargetedBurst,
    TransientFault,
    fault_from_dict,
    fault_to_dict,
)


@pytest.fixture
def plane():
    plane = FaultPlane()
    plane.declare(FlipFlop("fp32", "reg_a", 8, 0, "data"))
    plane.declare(FlipFlop("fp32", "ctrl", 4, -1, "control"))
    return plane


def _reg(plane):
    return plane._flipflops[("fp32", "reg_a", 0)]


class TestSpanValidation:
    """Out-of-range spans are construction errors, not silent clamps."""

    def test_transient_span_past_width_rejected(self, plane):
        with pytest.raises(ValueError, match="span"):
            TransientFault(_reg(plane), bit=6, cycle=0, n_bits=3)

    def test_bit_out_of_range_rejected(self, plane):
        with pytest.raises(ValueError, match="bit"):
            StuckAtFault(_reg(plane), bit=8)

    def test_zero_width_span_rejected(self, plane):
        with pytest.raises(ValueError, match="n_bits"):
            TargetedBurst(_reg(plane), bit=0, cycle=0, n_bits=0)

    def test_full_width_span_accepted(self, plane):
        fault = TransientFault(_reg(plane), bit=0, cycle=0, n_bits=8)
        assert fault.mask == 0xFF

    def test_stuck_at_polarity_validated(self, plane):
        with pytest.raises(ValueError, match="stuck_at"):
            StuckAtFault(_reg(plane), bit=0, stuck_at=2)

    def test_burst_pattern_must_fit_span(self, plane):
        with pytest.raises(ValueError, match="pattern"):
            TargetedBurst(_reg(plane), bit=0, cycle=0, n_bits=2,
                          pattern=0b100)
        with pytest.raises(ValueError, match="pattern"):
            TargetedBurst(_reg(plane), bit=0, cycle=0, n_bits=2,
                          pattern=0)


class TestStuckAtSemantics:
    def test_forces_every_latch(self, plane):
        plane.arm(StuckAtFault(_reg(plane), bit=0, stuck_at=1, n_bits=2))
        for cycle in range(50):
            plane.tick(1)
            assert plane.latch("fp32", "reg_a", 0b1000, 0) == 0b1011

    def test_stuck_at_zero_clears_span(self, plane):
        plane.arm(StuckAtFault(_reg(plane), bit=2, stuck_at=0, n_bits=2))
        assert plane.latch("fp32", "reg_a", 0b1111, 0) == 0b0011

    def test_fired_only_on_actual_distortion(self, plane):
        fault = StuckAtFault(_reg(plane), bit=0, stuck_at=1)
        plane.arm(fault)
        assert plane.latch("fp32", "reg_a", 0b0001, 0) == 0b0001
        assert not fault.fired  # forced value == written value
        assert plane.latch("fp32", "reg_a", 0b0000, 0) == 0b0001
        assert fault.fired and fault.fired_cycle == plane.cycle

    def test_never_decays_never_spent(self, plane):
        fault = StuckAtFault(_reg(plane), bit=0, stuck_at=1)
        plane.arm(fault)
        plane.tick(10_000)
        assert plane.armed_fault is fault
        assert not plane.fault_decayed
        assert not fault.spent
        assert not plane.passive

    def test_pending_for_whole_run(self, plane):
        plane.arm(StuckAtFault(_reg(plane), bit=0, stuck_at=0))
        for _ in range(100):
            plane.tick(1)
            plane.latch("fp32", "reg_a", 0b1111, 0)
            assert plane.injection_pending
            assert plane.pending_for("fp32")
            assert not plane.pending_for("int")

    def test_activation_cycle_gates_forcing(self, plane):
        plane.arm(StuckAtFault(_reg(plane), bit=0, stuck_at=1, cycle=5))
        assert plane.latch("fp32", "reg_a", 0, 0) == 0
        plane.tick(5)
        assert plane.latch("fp32", "reg_a", 0, 0) == 1

    def test_disarm_returns_permanent_fault(self, plane):
        fault = StuckAtFault(_reg(plane), bit=0, stuck_at=1)
        plane.arm(fault)
        plane.tick(3)
        plane.latch("fp32", "reg_a", 0, 0)
        assert plane.disarm() is fault
        assert plane.passive


class TestBurstSemantics:
    def test_corrupts_every_latch_in_window(self, plane):
        fault = TargetedBurst(_reg(plane), bit=0, cycle=1, window=3,
                              n_bits=2)
        plane.arm(fault)
        plane.tick(1)
        assert plane.latch("fp32", "reg_a", 0, 0) == 0b11
        plane.tick(1)
        assert plane.latch("fp32", "reg_a", 0, 0) == 0b11
        assert fault.hits == 2
        assert fault.fired_cycle == 1
        assert not fault.spent  # window still open

    def test_window_close_retires_to_passive(self, plane):
        fault = TargetedBurst(_reg(plane), bit=0, cycle=0, window=2)
        plane.arm(fault)
        assert plane.latch("fp32", "reg_a", 0, 0) == 0b11
        plane.tick(3)  # past the deadline, fired -> closed
        assert fault.closed and fault.spent
        assert plane.passive
        assert not plane.fault_decayed  # it landed; not a decay

    def test_unconsumed_burst_decays(self, plane):
        fault = TargetedBurst(_reg(plane), bit=0, cycle=0, window=2)
        plane.arm(fault)
        plane.tick(3)  # no latch ever happened
        assert fault.expired
        assert plane.fault_decayed
        assert plane.passive

    def test_pattern_overrides_contiguous_mask(self, plane):
        fault = TargetedBurst(_reg(plane), bit=2, cycle=0, window=1,
                              n_bits=3, pattern=0b101)
        plane.arm(fault)
        assert plane.latch("fp32", "reg_a", 0, 0) == 0b101 << 2

    def test_reset_clears_burst_runtime_state(self, plane):
        fault = TargetedBurst(_reg(plane), bit=0, cycle=0, window=1)
        plane.arm(fault)
        plane.latch("fp32", "reg_a", 0, 0)
        plane.tick(2)
        assert fault.hits == 1 and fault.closed
        fault.reset()
        assert fault.hits == 0 and not fault.closed
        assert fault.fired_cycle is None and not fault.expired


class TestSerde:
    def test_roundtrip_every_model(self, plane):
        reg = _reg(plane)
        faults = [
            TransientFault(reg, bit=3, cycle=7, window=2, n_bits=2),
            StuckAtFault(reg, bit=1, stuck_at=1, n_bits=3, cycle=4),
            TargetedBurst(reg, bit=2, cycle=5, window=6, n_bits=4,
                          pattern=0b1001),
        ]
        for fault in faults:
            clone = fault_from_dict(fault_to_dict(fault))
            assert clone == fault
            assert type(clone) is type(fault)

    def test_runtime_state_not_serialised(self, plane):
        fault = TargetedBurst(_reg(plane), bit=0, cycle=0, window=1)
        plane.arm(fault)
        plane.latch("fp32", "reg_a", 0, 0)
        payload = fault_to_dict(fault)
        for key in ("fired_cycle", "expired", "hits", "closed"):
            assert key not in payload
        clone = fault_from_dict(payload)
        assert clone.fired_cycle is None and clone.hits == 0

    def test_model_name_defaults_to_transient(self, plane):
        payload = fault_to_dict(TransientFault(_reg(plane), 0, 0))
        payload.pop("model")
        assert isinstance(fault_from_dict(payload), TransientFault)

    def test_unknown_model_rejected(self, plane):
        payload = fault_to_dict(TransientFault(_reg(plane), 0, 0))
        payload["model"] = "cosmic-ray"
        with pytest.raises(ValueError, match="cosmic-ray"):
            fault_from_dict(payload)

    def test_plane_resolution_enables_arming(self, plane):
        payload = fault_to_dict(StuckAtFault(_reg(plane), bit=0))
        clone = fault_from_dict(payload, plane=plane)
        plane.arm(clone)  # resolved against the declared inventory
        assert plane.armed_fault is clone

    def test_registry_names_match_model_attribute(self):
        for name, cls in FAULT_MODELS.items():
            assert cls.model == name
