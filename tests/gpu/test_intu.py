"""Integer functional-unit tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.bits import bits_to_int, int_to_bits
from repro.gpu.fault_plane import FaultPlane, FlipFlop, TransientFault
from repro.gpu.intu import IntUnit

int32s = st.integers(min_value=-2**31, max_value=2**31 - 1)


@pytest.fixture(scope="module")
def unit():
    return IntUnit(FaultPlane())


class TestSemantics:
    @given(int32s, int32s)
    @settings(max_examples=300)
    def test_iadd_wraps_like_int32(self, a, b):
        unit = IntUnit(FaultPlane())
        got = unit.iadd(int_to_bits(a), int_to_bits(b), 0)
        expected = np.int32(np.int64(a) + np.int64(b))
        assert bits_to_int(got) == int(expected)

    @given(int32s, int32s)
    @settings(max_examples=300)
    def test_imul_low_32_bits(self, a, b):
        unit = IntUnit(FaultPlane())
        got = unit.imul(int_to_bits(a), int_to_bits(b), 0)
        expected = (a * b) & 0xFFFFFFFF
        assert got == expected

    @given(int32s, int32s, int32s)
    @settings(max_examples=300)
    def test_imad(self, a, b, c):
        unit = IntUnit(FaultPlane())
        got = unit.imad(int_to_bits(a), int_to_bits(b), int_to_bits(c), 0)
        expected = (a * b + c) & 0xFFFFFFFF
        assert got == expected

    def test_examples(self, unit):
        assert bits_to_int(unit.iadd(int_to_bits(-5), int_to_bits(3), 0)) == -2
        assert bits_to_int(unit.imul(int_to_bits(-4), int_to_bits(7), 0)) == -28
        assert bits_to_int(
            unit.imad(int_to_bits(3), int_to_bits(4), int_to_bits(5), 0)) == 17


class TestFaultInjection:
    def test_carry_fault_shifts_high_half(self):
        plane = FaultPlane()
        unit = IntUnit(plane)
        ff = FlipFlop("int", "add.carry", 1, 0, "data")
        plane.arm(TransientFault(ff, 0, cycle=0, window=10))
        got = unit.iadd(int_to_bits(1), int_to_bits(2), 0)
        assert bits_to_int(got) == 3 + (1 << 16)

    def test_sum_lo_bit_fault(self):
        plane = FaultPlane()
        unit = IntUnit(plane)
        ff = FlipFlop("int", "add.sum_lo", 16, 0, "data")
        plane.arm(TransientFault(ff, 3, cycle=0, window=10))
        got = unit.iadd(int_to_bits(0), int_to_bits(0), 0)
        assert got == 8

    def test_partial_product_fault_changes_product(self):
        plane = FaultPlane()
        unit = IntUnit(plane)
        ff = FlipFlop("int", "mul.pp1", 48, 0, "data")
        plane.arm(TransientFault(ff, 0, cycle=0, window=10))
        got = unit.imul(int_to_bits(3), int_to_bits(5), 0)
        assert got == ((15 + (1 << 16)) & 0xFFFFFFFF)

    def test_unused_register_fault_is_masked(self):
        # pp registers never latch during IADD, so the transient decays
        plane = FaultPlane()
        unit = IntUnit(plane)
        ff = FlipFlop("int", "mul.pp0", 48, 0, "data")
        fault = TransientFault(ff, 5, cycle=0, window=10)
        plane.arm(fault)
        got = unit.iadd(int_to_bits(7), int_to_bits(8), 0)
        assert bits_to_int(got) == 15
        assert not plane.disarm().fired
