"""Fault-plane tests: inventory, arming, latching-window semantics."""

import pytest

from repro.gpu.fault_plane import (
    FaultPlane,
    FlipFlop,
    ModuleName,
    TransientFault,
)


@pytest.fixture
def plane():
    plane = FaultPlane()
    plane.declare(FlipFlop("fp32", "reg_a", 8, 0, "data"))
    plane.declare(FlipFlop("fp32", "reg_a", 8, 1, "data"))
    plane.declare(FlipFlop("fp32", "ctrl", 4, -1, "control"))
    plane.declare(FlipFlop("int", "reg_b", 16, 0, "data"))
    return plane


class TestInventory:
    def test_module_sizes(self, plane):
        assert plane.module_size("fp32") == 20
        assert plane.module_size("int") == 16
        assert plane.module_sizes() == {"fp32": 20, "int": 16}

    def test_flipflops_filtered(self, plane):
        assert len(plane.flipflops("fp32")) == 3
        assert len(plane.flipflops()) == 4

    def test_idempotent_declaration(self, plane):
        ff = FlipFlop("fp32", "reg_a", 8, 0, "data")
        assert plane.declare(ff) == ff

    def test_conflicting_declaration_rejected(self, plane):
        with pytest.raises(ValueError):
            plane.declare(FlipFlop("fp32", "reg_a", 9, 0, "data"))

    def test_module_names(self):
        assert len(ModuleName.ALL) == 6


class TestArming:
    def test_unknown_flipflop_rejected(self, plane):
        ghost = FlipFlop("fp32", "ghost", 8, 0, "data")
        with pytest.raises(KeyError):
            plane.arm(TransientFault(ghost, 0, 0))

    def test_double_arm_rejected(self, plane):
        ff = plane.flipflops("fp32")[0]
        plane.arm(TransientFault(ff, 0, 0))
        with pytest.raises(RuntimeError):
            plane.arm(TransientFault(ff, 1, 0))

    def test_bit_out_of_range_rejected(self, plane):
        ff = plane.flipflops("int")[0]
        with pytest.raises(ValueError):
            TransientFault(ff, 16, 0)

    def test_disarm_returns_fault(self, plane):
        ff = plane.flipflops("fp32")[0]
        fault = TransientFault(ff, 0, 0)
        plane.arm(fault)
        assert plane.disarm() is fault
        assert plane.disarm() is None


class TestLatchSemantics:
    def _ctrl_fault(self, plane, bit=0, cycle=0, window=1):
        ff = FlipFlop("fp32", "ctrl", 4, -1, "control")
        fault = TransientFault(ff, bit, cycle, window=window)
        plane.arm(fault)
        return fault

    def test_fires_within_window(self, plane):
        fault = self._ctrl_fault(plane, bit=1, cycle=2, window=1)
        plane.tick(2)  # cycle = 2
        assert plane.latch("fp32", "ctrl", 0b0000, -1) == 0b0010
        assert fault.fired_cycle == 2

    def test_fires_at_window_edge(self, plane):
        fault = self._ctrl_fault(plane, cycle=2, window=1)
        plane.tick(3)  # cycle = 3 == cycle + window
        assert plane.latch("fp32", "ctrl", 0, -1) == 1
        assert fault.fired

    def test_no_fire_before_injection_cycle(self, plane):
        fault = self._ctrl_fault(plane, cycle=5)
        assert plane.latch("fp32", "ctrl", 0, -1) == 0
        assert not fault.fired

    def test_decays_after_window(self, plane):
        fault = self._ctrl_fault(plane, cycle=0, window=1)
        plane.tick(3)
        assert plane.latch("fp32", "ctrl", 0, -1) == 0
        assert fault.expired and not fault.fired
        assert plane.fault_decayed

    def test_tick_expires_unlatched_fault(self, plane):
        fault = self._ctrl_fault(plane, cycle=0, window=1)
        plane.tick(2)
        assert fault.expired
        assert plane.fault_decayed

    def test_fires_exactly_once(self, plane):
        self._ctrl_fault(plane, cycle=0, window=5)
        first = plane.latch("fp32", "ctrl", 0, -1)
        second = plane.latch("fp32", "ctrl", 0, -1)
        assert first == 1 and second == 0

    def test_wrong_register_untouched(self, plane):
        fault = self._ctrl_fault(plane, cycle=0, window=5)
        assert plane.latch("int", "reg_b", 0, 0) == 0
        assert plane.latch("fp32", "reg_a", 0, 0) == 0  # wrong lane/name
        assert not fault.fired

    def test_lane_must_match(self, plane):
        ff = FlipFlop("fp32", "reg_a", 8, 1, "data")
        plane.arm(TransientFault(ff, 0, 0, window=5))
        assert plane.latch("fp32", "reg_a", 0, 0) == 0  # lane 0, not 1
        assert plane.latch("fp32", "reg_a", 0, 1) == 1  # lane 1 fires

    def test_pending_predicates(self, plane):
        fault = self._ctrl_fault(plane, cycle=0, window=5)
        assert plane.injection_pending
        assert plane.pending_for("fp32")
        assert not plane.pending_for("int")
        plane.latch("fp32", "ctrl", 0, -1)
        assert not plane.injection_pending

    def test_reset_time(self, plane):
        plane.tick(10)
        plane.reset_time()
        assert plane.cycle == 0
