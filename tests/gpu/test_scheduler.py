"""Warp-scheduler tests."""

import pytest

from repro.errors import GpuHardwareError
from repro.gpu.fault_plane import FaultPlane, FlipFlop, TransientFault
from repro.gpu.scheduler import WarpScheduler, WarpState


@pytest.fixture
def scheduler():
    sched = WarpScheduler(FaultPlane(), n_warps=4)
    sched.reset()
    return sched


class TestLifecycle:
    def test_reset_initialises_contexts(self, scheduler):
        assert len(scheduler.contexts) == 4
        for warp_id, ctx in enumerate(scheduler.contexts):
            assert ctx.pc == 0
            assert ctx.state == WarpState.READY
            assert ctx.active_mask == (1 << 32) - 1
            assert ctx.thread_base == warp_id * 32

    def test_round_robin_order(self, scheduler):
        order = [scheduler.select().warp_id for _ in range(8)]
        assert order == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_retired_warps_skipped(self, scheduler):
        scheduler.retire(scheduler.context(1))
        order = [scheduler.select().warp_id for _ in range(6)]
        assert 1 not in order

    def test_all_exited(self, scheduler):
        assert not scheduler.all_exited()
        for ctx in scheduler.contexts:
            scheduler.retire(ctx)
        assert scheduler.all_exited()
        assert scheduler.select() is None

    def test_advance_and_mask(self, scheduler):
        ctx = scheduler.context(0)
        scheduler.advance(ctx, 5)
        assert ctx.pc == 5
        scheduler.set_mask(ctx, 0xF)
        assert ctx.active_mask == 0xF

    def test_needs_at_least_one_warp(self):
        with pytest.raises(ValueError):
            WarpScheduler(FaultPlane(), n_warps=0)


class TestFaults:
    def _arm(self, plane, name, lane, bit, width, window=3):
        ff = FlipFlop("scheduler", name, width, lane, "control")
        plane.arm(TransientFault(ff, bit, cycle=0, window=window))

    def test_mask_fault_disables_thread(self):
        plane = FaultPlane()
        sched = WarpScheduler(plane, n_warps=2)
        sched.reset()
        self._arm(plane, "warp.active_mask", 0, 5, 32)
        ctx = sched.select()
        assert ctx.warp_id == 0
        assert not ctx.active_mask >> 5 & 1

    def test_state_fault_to_illegal_raises(self):
        plane = FaultPlane()
        sched = WarpScheduler(plane, n_warps=2)
        sched.reset()
        # burst flipping both FSM bits: READY(0) -> 3, the illegal encoding
        ff = FlipFlop("scheduler", "warp.state", 2, 0, "control")
        plane.arm(TransientFault(ff, 0, cycle=0, window=3, n_bits=2))
        with pytest.raises(GpuHardwareError):
            sched.select()
            sched.select()

    def test_state_fault_to_barrier_parks_warp(self):
        plane = FaultPlane()
        sched = WarpScheduler(plane, n_warps=2)
        sched.reset()
        self._arm(plane, "warp.state", 0, 1, 2)  # READY(0) -> BARRIER(2)
        first = sched.select()
        assert first.warp_id == 1  # warp 0 is parked
        assert sched.context(0).state == WarpState.BARRIER

    def test_state_fault_to_exited_parks_warp(self):
        plane = FaultPlane()
        sched = WarpScheduler(plane, n_warps=2)
        sched.reset()
        self._arm(plane, "warp.state", 0, 0, 2)  # READY(0) -> EXITED(1)
        first = sched.select()
        assert first.warp_id == 1  # warp 0 got corrupted away
        assert sched.context(0).state == WarpState.EXITED

    def test_thread_base_fault_shifts_warp(self):
        plane = FaultPlane()
        sched = WarpScheduler(plane, n_warps=2)
        sched.reset()
        self._arm(plane, "warp.thread_base", 0, 4, 8)
        ctx = sched.select()
        assert ctx.thread_base == 16

    def test_pc_fault_moves_fetch(self):
        plane = FaultPlane()
        sched = WarpScheduler(plane, n_warps=1)
        sched.reset()
        self._arm(plane, "warp.pc", 0, 2, 12)
        ctx = sched.select()
        assert ctx.pc == 4
