"""Shared-memory and barrier-synchronisation tests."""

import numpy as np
import pytest

from repro.errors import GpuHangError, MemoryFaultError
from repro.gpu import Opcode, StreamingMultiprocessor, assemble
from repro.gpu.bits import bits_to_float, float_to_bits
from repro.gpu.fault_plane import FlipFlop, TransientFault
from repro.gpu.program import ProgramBuilder
from repro.gpu.scheduler import WarpState


def _staging_program():
    """Each thread stages its value to shared memory; thread reads the
    value its *neighbour* staged — only correct if the barrier works."""
    b = ProgramBuilder("stage")
    b.gld(2, 0, offset=0x100)
    b.sst(0, 2)                  # shared[tid] = x[tid]
    b.bar()
    b.iadd(3, 0, b.imm(1))
    b.lop_and(3, 3, b.imm(63))   # neighbour index (wrap at 64)
    b.sld(4, 3)                  # shared[(tid+1) % 64]
    b.gst(0, 4, offset=0x300)
    b.exit()
    return b.build()


class TestSharedMemory:
    def test_cross_warp_exchange_through_barrier(self):
        sm = StreamingMultiprocessor()
        values = [float(i) * 0.5 for i in range(64)]
        image = {0x100: [float_to_bits(v) for v in values]}
        result = sm.launch(_staging_program(), 64, memory_image=image)
        out = result.memory.read_floats(0x300, 64)
        expected = [values[(i + 1) % 64] for i in range(64)]
        assert out == expected

    def test_shared_memory_reset_between_launches(self):
        sm = StreamingMultiprocessor()
        b = ProgramBuilder("peek")
        b.sld(2, 0)
        b.gst(0, 2, offset=0x300)
        b.exit()
        program = b.build()
        # first launch writes shared memory via the staging program
        image = {0x100: [float_to_bits(1.0)] * 64}
        sm.launch(_staging_program(), 64, memory_image=image)
        result = sm.launch(program, 8)
        assert result.memory.read_words(0x300, 8) == [0] * 8

    def test_shared_memory_bounds_are_a_due(self):
        sm = StreamingMultiprocessor()
        b = ProgramBuilder("oob")
        b.sld(2, 0, offset=1 << 20)
        b.gst(0, 2, offset=0x300)
        b.exit()
        with pytest.raises(MemoryFaultError):
            sm.launch(b.build(), 4)

    def test_barrier_single_warp(self):
        sm = StreamingMultiprocessor()
        b = ProgramBuilder("solo")
        b.sst(0, 0)
        b.bar()
        b.sld(2, 0)
        b.gst(0, 2, offset=0x300)
        b.exit()
        result = sm.launch(b.build(), 8)
        assert result.memory.read_words(0x300, 8) == list(range(8))

    def test_assembler_supports_shared_ops(self):
        program = assemble(
            "SST [R0], R0\nBAR\nSLD R2, [R0 + 0x40]\nEXIT")
        assert program[0].opcode is Opcode.SST
        assert program[1].opcode is Opcode.BAR
        assert program[2].offset == 0x40

    def test_disassembly_roundtrip(self):
        from repro.gpu.asm import disassemble

        program = _staging_program()
        again = assemble(disassemble(program))
        assert again.instructions == program.instructions


class TestBarrierFaults:
    def test_barrier_state_corruption_is_recoverable_or_detected(self):
        """A warp state flipped at the barrier either re-runs (SDC/masked)
        or hangs the kernel (DUE) — never crashes the framework."""
        sm = StreamingMultiprocessor()
        image = {0x100: [float_to_bits(1.0)] * 64}
        golden = sm.launch(_staging_program(), 64, memory_image=image)
        from repro.errors import FaultDecayedError

        ff = FlipFlop("scheduler", "warp.state", 2, 0, "control")
        outcomes = set()
        for cycle in range(0, golden.cycles, 7):
            fault = TransientFault(ff, 1, cycle, window=3)
            try:
                result = sm.launch(_staging_program(), 64,
                                   memory_image=image, fault=fault,
                                   max_cycles=golden.cycles * 10)
                result.memory.read_words(0x300, 64)
                outcomes.add("run")
            except FaultDecayedError:
                outcomes.add("masked")
            except GpuHangError:
                outcomes.add("hang")
        assert outcomes  # every injection resolved cleanly


class TestTmxmSharedVariant:
    def test_matches_plain_variant(self, injector):
        from repro.rtl import make_tmxm_bench

        plain = injector.run_golden(make_tmxm_bench("Random", seed=4))
        shared = injector.run_golden(
            make_tmxm_bench("Random", seed=4, use_shared_memory=True))
        assert plain.regions == shared.regions

    def test_shared_variant_uses_barrier(self):
        from repro.rtl import make_tmxm_bench

        bench = make_tmxm_bench("Random", use_shared_memory=True)
        histogram = bench.program.opcode_histogram()
        assert histogram[Opcode.BAR] == 1
        assert histogram[Opcode.SLD] == 2
        assert histogram[Opcode.SST] == 2
