"""Property-based fuzzing over randomly generated SASS programs.

Generates small, valid programs from the full supported opcode set and
checks the system-level invariants: assembler round-trips, deterministic
execution, SIMT-width equivalence (8/16/32 lanes), and watchdog-bounded
termination.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import SMConfig, StreamingMultiprocessor
from repro.gpu.asm import assemble, disassemble
from repro.gpu.isa import CompareOp, Predicate
from repro.gpu.program import ProgramBuilder

_REGS = st.integers(min_value=1, max_value=12)
_IMMS = st.integers(min_value=-64, max_value=64)


@st.composite
def _instruction_emitters(draw):
    """One random instruction as a builder-callable."""
    choice = draw(st.sampled_from([
        "mov", "iadd", "imul", "imad", "fadd", "fmul", "ffma",
        "shl", "shr", "lop_and", "lop_or", "lop_xor", "i2f", "iset",
    ]))
    d = draw(_REGS)
    a = draw(_REGS)
    b_reg = draw(_REGS)
    imm = draw(_IMMS)

    def emit(builder: ProgramBuilder) -> None:
        if choice == "mov":
            builder.mov(d, builder.imm(imm))
        elif choice == "iadd":
            builder.iadd(d, a, builder.imm(imm))
        elif choice == "imul":
            builder.imul(d, a, b_reg)
        elif choice == "imad":
            builder.imad(d, a, b_reg, a)
        elif choice == "fadd":
            builder.fadd(d, a, b_reg)
        elif choice == "fmul":
            builder.fmul(d, a, b_reg)
        elif choice == "ffma":
            builder.ffma(d, a, b_reg, a)
        elif choice == "shl":
            builder.shl(d, a, builder.imm(abs(imm) % 32))
        elif choice == "shr":
            builder.shr(d, a, builder.imm(abs(imm) % 32))
        elif choice == "lop_and":
            builder.lop_and(d, a, b_reg)
        elif choice == "lop_or":
            builder.lop_or(d, a, b_reg)
        elif choice == "lop_xor":
            builder.lop_xor(d, a, b_reg)
        elif choice == "i2f":
            builder.i2f(d, a)
        elif choice == "iset":
            builder.iset(builder.reg(d), a, builder.imm(imm),
                         CompareOp.LT)

    return emit


@st.composite
def programs(draw):
    """A small, always-terminating program with a stored result."""
    emitters = draw(st.lists(_instruction_emitters(), min_size=1,
                             max_size=10))
    builder = ProgramBuilder("fuzz")
    for emit in emitters:
        emit(builder)
    # optional bounded uniform loop
    if draw(st.booleans()):
        trip = draw(st.integers(min_value=1, max_value=4))
        builder.mov(14, builder.imm(0))
        builder.label("loop")
        builder.iadd(14, 14, builder.imm(1))
        builder.iset(Predicate(0), 14, builder.imm(trip), CompareOp.LT)
        builder.bra("loop", predicate=Predicate(0))
    builder.gst(0, draw(_REGS), offset=0x300)
    builder.exit()
    return builder.build()


class TestProgramFuzz:
    @given(programs())
    @settings(max_examples=60, deadline=None)
    def test_assembler_roundtrip(self, program):
        again = assemble(disassemble(program))
        assert again.instructions == program.instructions
        assert again.labels == program.labels

    @given(programs())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_execution(self, program):
        sm = StreamingMultiprocessor()
        first = sm.launch(program, 16)
        second = sm.launch(program, 16)
        assert first.memory.read_words(0x300, 16) == \
            second.memory.read_words(0x300, 16)
        assert first.cycles == second.cycles

    @given(programs())
    @settings(max_examples=20, deadline=None)
    def test_simt_width_equivalence(self, program):
        outputs = []
        for n_lanes in (8, 16, 32):
            sm = StreamingMultiprocessor(SMConfig(n_lanes=n_lanes))
            result = sm.launch(program, 64)
            outputs.append(result.memory.read_words(0x300, 64))
        assert outputs[0] == outputs[1] == outputs[2]

    @given(programs())
    @settings(max_examples=30, deadline=None)
    def test_terminates_within_watchdog(self, program):
        sm = StreamingMultiprocessor()
        result = sm.launch(program, 8, max_cycles=50_000)
        assert result.cycles <= 50_000
