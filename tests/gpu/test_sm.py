"""Streaming-multiprocessor execution tests."""

import math

import numpy as np
import pytest

from repro.errors import GpuHangError, InvalidProgramCounterError
from repro.gpu.bits import bits_to_float, bits_to_int, float_to_bits, int_to_bits
from repro.gpu.fault_plane import FlipFlop, TransientFault
from repro.gpu.isa import CompareOp, Opcode, Predicate
from repro.gpu.program import ProgramBuilder
from repro.gpu.sm import SMConfig, StreamingMultiprocessor


@pytest.fixture
def sm():
    return StreamingMultiprocessor()


def _run_single_op(sm, emit, inputs_a, inputs_b, out_kind="f32",
                   inputs_c=None):
    n = len(inputs_a)
    b = ProgramBuilder("t")
    b.gld(2, 0, offset=0x100)
    b.gld(3, 0, offset=0x200)
    if inputs_c is not None:
        b.gld(4, 0, offset=0x280)
    emit(b)
    b.gst(0, 5, offset=0x300)
    b.exit()
    conv = float_to_bits if out_kind == "f32" else int_to_bits
    image = {0x100: [conv(v) for v in inputs_a],
             0x200: [conv(v) for v in inputs_b]}
    if inputs_c is not None:
        image[0x280] = [conv(v) for v in inputs_c]
    result = sm.launch(b.build(), n, memory_image=image)
    words = result.memory.read_words(0x300, n)
    if out_kind == "f32":
        return [bits_to_float(w) for w in words]
    return [bits_to_int(w) for w in words]


class TestArithmeticExecution:
    def test_fadd(self, sm):
        out = _run_single_op(sm, lambda b: b.fadd(5, 2, 3),
                             [1.5, -2.0], [0.25, 8.0])
        assert out == [1.75, 6.0]

    def test_ffma(self, sm):
        out = _run_single_op(sm, lambda b: b.ffma(5, 2, 3, 4),
                             [2.0], [3.0], inputs_c=[1.0])
        assert out == [7.0]

    def test_imul(self, sm):
        out = _run_single_op(sm, lambda b: b.imul(5, 2, 3),
                             [-3, 7], [9, 11], out_kind="u32")
        assert out == [-27, 77]

    def test_fsin_through_sfu(self, sm):
        out = _run_single_op(sm, lambda b: b.fsin(5, 2),
                             [0.5, 1.0], [0.0, 0.0])
        assert out[0] == pytest.approx(math.sin(0.5), abs=1e-5)
        assert out[1] == pytest.approx(math.sin(1.0), abs=1e-5)

    def test_all_64_threads(self, sm):
        values = [float(i) for i in range(64)]
        out = _run_single_op(sm, lambda b: b.fadd(5, 2, 3),
                             values, values)
        assert out == [2.0 * v for v in values]


class TestControlFlow:
    def test_uniform_loop(self, sm):
        b = ProgramBuilder("loop")
        b.mov(1, b.imm(0))
        b.label("top")
        b.iadd(1, 1, b.imm(1))
        b.iset(Predicate(0), 1, b.imm(5), CompareOp.LT)
        b.bra("top", predicate=Predicate(0))
        b.gst(0, 1, offset=0x300)
        b.exit()
        result = sm.launch(b.build(), 8)
        assert result.memory.read_words(0x300, 8) == [5] * 8

    def test_predicated_store(self, sm):
        b = ProgramBuilder("pred")
        b.iset(Predicate(0), 0, b.imm(4), CompareOp.LT)
        b.mov(1, b.imm(7))
        from repro.gpu.isa import Instruction, Register

        b.emit(Instruction(Opcode.GST, None, (Register(0), Register(1)),
                           predicate=Predicate(0), offset=0x300))
        b.exit()
        result = sm.launch(b.build(), 8)
        words = result.memory.read_words(0x300, 8)
        assert words == [7, 7, 7, 7, 0, 0, 0, 0]

    def test_watchdog_fires_on_infinite_loop(self, sm):
        b = ProgramBuilder("spin")
        b.label("top")
        b.bra("top")
        b.exit()
        with pytest.raises(GpuHangError):
            sm.launch(b.build(), 8, max_cycles=500)

    def test_thread_id_abi(self, sm):
        b = ProgramBuilder("tid")
        b.gst(0, 0, offset=0x300)
        b.exit()
        result = sm.launch(b.build(), 40)
        assert result.memory.read_words(0x300, 40) == list(range(40))

    def test_initial_registers(self, sm):
        b = ProgramBuilder("init")
        b.gst(0, 9, offset=0x300)
        b.exit()
        result = sm.launch(b.build(), 4,
                           initial_registers={9: (5, 6, 7, 8)})
        assert result.memory.read_words(0x300, 4) == [5, 6, 7, 8]


class TestLaunchValidation:
    def test_thread_count_bounds(self, sm):
        b = ProgramBuilder("x")
        b.exit()
        program = b.build()
        with pytest.raises(ValueError):
            sm.launch(program, 0)
        with pytest.raises(ValueError):
            sm.launch(program, 10_000)

    def test_warp_size_must_divide(self):
        with pytest.raises(ValueError):
            SMConfig(n_lanes=7)

    def test_deterministic_cycles(self, sm):
        b = ProgramBuilder("det")
        b.fadd(5, 0, 0)
        b.exit()
        first = sm.launch(b.build(), 16)
        second = sm.launch(b.build(), 16)
        assert first.cycles == second.cycles


class TestFaultsThroughSm:
    def _program(self):
        b = ProgramBuilder("w")
        b.gld(2, 0, offset=0x100)
        b.fadd(5, 2, 2)
        b.gst(0, 5, offset=0x300)
        b.exit()
        return b.build()

    def test_pc_fault_beyond_program_is_due(self, sm):
        program = self._program()
        image = {0x100: [float_to_bits(1.0)] * 8}
        golden = sm.launch(program, 8, memory_image=image)
        ff = FlipFlop("scheduler", "warp.pc", 12, 0, "control")
        fault = TransientFault(ff, 11, cycle=1, window=50)
        with pytest.raises(InvalidProgramCounterError):
            sm.launch(program, 8, memory_image=image, fault=fault,
                      max_cycles=10 * golden.cycles)

    def test_thread_base_fault_shifts_outputs(self, sm):
        program = self._program()
        image = {0x100: [float_to_bits(float(i)) for i in range(8)]}
        ff = FlipFlop("scheduler", "warp.thread_base", 8, 0, "control")
        fault = TransientFault(ff, 6, cycle=0, window=50)
        result = sm.launch(program, 8, memory_image=image, fault=fault,
                           max_cycles=5000)
        # base 0 -> 64: every thread id is out of range, no output written
        assert result.memory.read_words(0x300, 8) == [0] * 8
