"""SFU datapath and shared-unit controller tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GpuHangError
from repro.gpu.bits import bits_to_float, float_to_bits
from repro.gpu.fault_plane import FaultPlane, FlipFlop, TransientFault
from repro.gpu.isa import Opcode
from repro.gpu.sfu import SFU_INPUT_MAX, SfuController, SfuDatapath


@pytest.fixture
def controller():
    return SfuController(FaultPlane())


class TestDatapathAccuracy:
    @given(st.floats(min_value=0.0, max_value=SFU_INPUT_MAX))
    @settings(max_examples=200)
    def test_sin_accuracy(self, x):
        unit = SfuDatapath(FaultPlane(), 0)
        got = bits_to_float(unit.compute(Opcode.FSIN, float_to_bits(x)))
        assert got == pytest.approx(math.sin(x), abs=5e-6)

    @given(st.floats(min_value=0.0, max_value=SFU_INPUT_MAX))
    @settings(max_examples=200)
    def test_exp_accuracy(self, x):
        unit = SfuDatapath(FaultPlane(), 0)
        got = bits_to_float(unit.compute(Opcode.FEXP, float_to_bits(x)))
        assert got == pytest.approx(math.exp(x), abs=5e-6)

    def test_sin_is_odd(self):
        unit = SfuDatapath(FaultPlane(), 0)
        pos = bits_to_float(unit.compute(Opcode.FSIN, float_to_bits(0.5)))
        neg = bits_to_float(unit.compute(Opcode.FSIN, float_to_bits(-0.5)))
        assert neg == pytest.approx(-pos)

    def test_out_of_range_saturates(self):
        unit = SfuDatapath(FaultPlane(), 0)
        got = bits_to_float(unit.compute(Opcode.FSIN, float_to_bits(10.0)))
        assert got == pytest.approx(math.sin(SFU_INPUT_MAX), abs=5e-6)

    def test_rejects_non_sfu_opcode(self):
        unit = SfuDatapath(FaultPlane(), 0)
        with pytest.raises(ValueError):
            unit.compute(Opcode.FADD, 0)


class TestController:
    def test_routes_every_thread(self, controller):
        inputs = [(tid, float_to_bits(0.1 * tid)) for tid in range(8)]
        results = controller.execute(Opcode.FSIN, inputs)
        assert set(results) == set(range(8))
        for tid, _ in inputs:
            assert bits_to_float(results[tid]) == pytest.approx(
                math.sin(0.1 * tid), abs=5e-6)

    def test_empty_request(self, controller):
        assert controller.execute(Opcode.FEXP, []) == {}

    def test_group_base_fault_misroutes_whole_group(self):
        plane = FaultPlane()
        controller = SfuController(plane)
        ff = FlipFlop("sfu_controller", "ctrl.group_base", 6, -1, "control")
        plane.arm(TransientFault(ff, 3, cycle=0, window=10))
        inputs = [(tid, float_to_bits(0.2)) for tid in range(8)]
        results = controller.execute(Opcode.FSIN, inputs)
        # base 0 -> 8: every result lands on threads 8..15
        assert set(results) == set(range(8, 16))

    def test_pending_count_runaway_hangs(self):
        plane = FaultPlane()
        controller = SfuController(plane)
        ff = FlipFlop("sfu_controller", "ctrl.pending_count", 7, -1,
                      "control")
        plane.arm(TransientFault(ff, 6, cycle=0, window=10))
        inputs = [(tid, float_to_bits(0.2)) for tid in range(8)]
        with pytest.raises(GpuHangError):
            controller.execute(Opcode.FSIN, inputs)

    def test_dest_lane_fault_corrupts_two_threads(self):
        plane = FaultPlane()
        controller = SfuController(plane)
        ff = FlipFlop("sfu_controller", "ctrl.dest_lane", 6, -1, "control")
        plane.arm(TransientFault(ff, 0, cycle=0, window=100))
        inputs = [(tid, float_to_bits(0.3 + 0.01 * tid))
                  for tid in range(4)]
        results = controller.execute(Opcode.FSIN, inputs)
        golden = {tid: math.sin(0.3 + 0.01 * tid) for tid, _ in inputs}
        wrong = [tid for tid in results
                 if tid not in golden
                 or abs(bits_to_float(results[tid]) - golden[tid]) > 1e-5]
        missing = [tid for tid in golden if tid not in results]
        assert wrong or missing
