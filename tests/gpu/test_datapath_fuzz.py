"""Seeded differential fuzz of the functional-unit datapaths.

Oracles pin the golden-mode datapath semantics per float format:

* ``FP32Unit.fadd``/``fmul`` against numpy ``float32`` arithmetic with
  the unit's G80 conventions applied (FTZ on input and output, every
  NaN canonicalised to ``0x7FC00000``);
* ``FP16Unit.fadd``/``fmul`` against numpy ``float16`` arithmetic (its
  add/mul are single-rounded — both fit a binary32 significand
  exactly), NaNs canonicalised to ``0x7E00``;
* ``BF16Unit.fadd``/``fmul`` against binary32 arithmetic rounded to
  the top half nearest-even (also single-rounded), NaNs to ``0x7FC0``;
* every format's ``ffma`` against an exact :mod:`fractions`-based
  single-rounding fused multiply-add — numpy cannot express the fp32
  one, which is exactly why the fused path deserves its own oracle;
* ``IntUnit`` ops against wrapping numpy ``uint32`` arithmetic.

The same operand streams then validate the vectorized numpy kernels
(:mod:`repro.gpu.vector`) element-by-element against the scalar units —
the bit-identity contract the fault-parallel replay engine relies on
for dirty-lane recomputation.

Operands are raw bit patterns with a forced share of specials
(Inf/NaN exponents, denormals, zeros), not just well-behaved floats.
"""

from fractions import Fraction

import numpy as np

from repro.gpu.bits import float_to_bits
from repro.gpu.fault_plane import FaultPlane
from repro.gpu.fp32 import BF16Unit, FP16Unit, FP32Unit
from repro.gpu.intu import IntUnit
from repro.gpu.isa import CompareOp, Opcode
from repro.gpu.vector import VECTOR_OPCODES, vector_compute

N_CASES = 2500
_QNAN = 0x7FC00000
_EXP = 0x7F800000
_MANT = 0x007FFFFF
_SIGN = 0x80000000


def _operands(seed, n=N_CASES):
    """Raw uint32 operand stream with ~1/2 specials mixed in."""
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 1 << 32, size=n, dtype=np.uint32)
    shape = rng.integers(0, 4, size=n)
    bits = np.where(shape == 1, (bits & 0x807FFFFF) | _EXP, bits)  # Inf/NaN
    bits = np.where(shape == 2, bits & 0x807FFFFF, bits)           # denorm/0
    return bits


def _units():
    plane = FaultPlane()
    return FP32Unit(plane, 8), IntUnit(plane, 8)


# -- numpy float32 reference (G80 conventions) -------------------------------
def _np_f32(op, a_bits, b_bits):
    def flush(bits):
        return np.where((bits & _EXP) == 0, bits & _SIGN, bits)

    with np.errstate(all="ignore"):
        a = flush(a_bits).view(np.float32)
        b = flush(b_bits).view(np.float32)
        out = (a + b if op is Opcode.FADD else a * b).view(np.uint32)
    nan = ((out & _EXP) == _EXP) & ((out & _MANT) != 0)
    out = np.where(nan, np.uint32(_QNAN), out)
    denormal = ((out & _EXP) == 0) & ((out & _MANT) != 0)
    return np.where(denormal, out & _SIGN, out)


# -- exact fused multiply-add reference --------------------------------------
# Parameterized over (exponent bits, mantissa bits) so one oracle pins
# the fused path of every float format the datapath supports.
def _decompose_fmt(bits, exp_bits, mant_bits):
    bias = (1 << (exp_bits - 1)) - 1
    exp_mask = (1 << exp_bits) - 1
    sign = bits >> (exp_bits + mant_bits)
    exp = (bits >> mant_bits) & exp_mask
    mant = bits & ((1 << mant_bits) - 1)
    if exp == exp_mask:
        return ("nan" if mant else "inf", sign, None)
    if exp == 0:  # FTZ input
        return ("num", sign, Fraction(0))
    return ("num", sign,
            Fraction((1 << mant_bits) | mant, 1 << mant_bits)
            * Fraction(2) ** (exp - bias))


def _round_fmt(sign, magnitude, exp_bits, mant_bits):
    """Round a positive Fraction to format bits: RNE, FTZ, Inf overflow."""
    bias = (1 << (exp_bits - 1)) - 1
    exp_mask = (1 << exp_bits) - 1
    sign_shift = exp_bits + mant_bits
    mant_mask = (1 << mant_bits) - 1
    exp = 0
    while Fraction(2) ** exp > magnitude:
        exp -= 1
    while Fraction(2) ** (exp + 1) <= magnitude:
        exp += 1
    if exp < 1 - bias:
        # denormal range: round on the denormal grid, then flush to zero
        q = magnitude / Fraction(2) ** (1 - bias - mant_bits)
        integer = int(q)
        rem = q - integer
        if rem > Fraction(1, 2) or (rem == Fraction(1, 2) and integer & 1):
            integer += 1
        if integer >= 1 << mant_bits:  # rounded up into smallest normal
            return (sign << sign_shift) | (1 << mant_bits)
        return sign << sign_shift
    q = magnitude / Fraction(2) ** (exp - mant_bits)
    integer = int(q)
    rem = q - integer
    if rem > Fraction(1, 2) or (rem == Fraction(1, 2) and integer & 1):
        integer += 1
    if integer >= 1 << (mant_bits + 1):
        integer >>= 1
        exp += 1
    if exp > bias:
        return (sign << sign_shift) | (exp_mask << mant_bits)
    return ((sign << sign_shift) | ((exp + bias) << mant_bits)
            | (integer & mant_mask))


def exact_fma_fmt(a_bits, b_bits, c_bits, exp_bits, mant_bits):
    """Single-rounding fused multiply-add with G80 FTZ/NaN conventions."""
    exp_mask = (1 << exp_bits) - 1
    sign_shift = exp_bits + mant_bits
    inf = exp_mask << mant_bits
    qnan = inf | (1 << (mant_bits - 1))
    sign_bit = 1 << sign_shift
    da, db, dc = (_decompose_fmt(x, exp_bits, mant_bits)
                  for x in (a_bits, b_bits, c_bits))
    if "nan" in (da[0], db[0], dc[0]):
        return qnan
    if da[0] == "inf" or db[0] == "inf":
        other = db if da[0] == "inf" else da
        if other[0] == "num" and other[2] == 0:
            return qnan  # Inf x 0
        product_sign = da[1] ^ db[1]
        if dc[0] == "inf" and dc[1] != product_sign:
            return qnan  # Inf - Inf
        return (product_sign << sign_shift) | inf
    if dc[0] == "inf":
        return (dc[1] << sign_shift) | inf
    product = (-1) ** da[1] * da[2] * (-1) ** db[1] * db[2]
    addend = (-1) ** dc[1] * dc[2]
    exact = product + addend
    if exact == 0:
        if product == 0 and addend == 0:
            # both zero: IEEE keeps -0 only when every term is negative
            return (da[1] ^ db[1]) & dc[1] and sign_bit or 0
        return 0  # exact cancellation rounds to +0 in round-to-nearest
    sign = 0 if exact > 0 else 1
    return _round_fmt(sign, abs(exact), exp_bits, mant_bits)


def exact_fma(a_bits, b_bits, c_bits):
    """Single-rounding float32 FMA with G80 FTZ/NaN conventions."""
    return exact_fma_fmt(a_bits, b_bits, c_bits, 8, 23)


# -- the fuzz ----------------------------------------------------------------
class TestFp32DifferentialFuzz:
    def test_fadd_matches_numpy_float32(self):
        fp32, _ = _units()
        a, b = _operands(11), _operands(12)
        want = _np_f32(Opcode.FADD, a, b)
        for i in range(N_CASES):
            assert fp32.fadd(int(a[i]), int(b[i]), 0) == int(want[i]), \
                f"fadd({int(a[i]):#010x}, {int(b[i]):#010x})"

    def test_fmul_matches_numpy_float32(self):
        fp32, _ = _units()
        a, b = _operands(21), _operands(22)
        want = _np_f32(Opcode.FMUL, a, b)
        for i in range(N_CASES):
            assert fp32.fmul(int(a[i]), int(b[i]), 0) == int(want[i]), \
                f"fmul({int(a[i]):#010x}, {int(b[i]):#010x})"

    def test_ffma_matches_exact_single_rounding(self):
        fp32, _ = _units()
        a, b, c = _operands(31), _operands(32), _operands(33)
        for i in range(N_CASES):
            got = fp32.ffma(int(a[i]), int(b[i]), int(c[i]), 0)
            want = exact_fma(int(a[i]), int(b[i]), int(c[i]))
            assert got == want, (
                f"ffma({int(a[i]):#010x}, {int(b[i]):#010x}, "
                f"{int(c[i]):#010x}): unit {got:#010x} != exact "
                f"{want:#010x}")


class TestIntDifferentialFuzz:
    def test_int_ops_match_numpy_uint32(self):
        _, intu = _units()
        a, b, c = _operands(41), _operands(42), _operands(43)
        with np.errstate(all="ignore"):
            refs = {
                "iadd": a + b,
                "imul": a * b,
                "imad": a * b + c,
                "shl": a << (b & np.uint32(31)),
                "shr": a >> (b & np.uint32(31)),
                "and": a & b,
                "or": a | b,
                "xor": a ^ b,
            }
        for i in range(N_CASES):
            x, y, z = int(a[i]), int(b[i]), int(c[i])
            assert intu.iadd(x, y, 0) == int(refs["iadd"][i])
            assert intu.imul(x, y, 0) == int(refs["imul"][i])
            assert intu.imad(x, y, z, 0) == int(refs["imad"][i])
            assert intu.shl(x, y, 0) == int(refs["shl"][i])
            assert intu.shr(x, y, 0) == int(refs["shr"][i])
            for lop in ("and", "or", "xor"):
                assert intu.lop(lop.upper(), x, y, 0) == int(refs[lop][i])


class TestVectorKernelsMatchScalarUnits:
    """The vector kernels must be bit-identical to the scalar units —
    the replay engine substitutes one for the other on dirty lanes."""

    def test_fadd_fmul_elementwise(self):
        fp32, _ = _units()
        a, b = _operands(51), _operands(52)
        for op, fn in ((Opcode.FADD, fp32.fadd), (Opcode.FMUL, fp32.fmul)):
            vec = vector_compute(op, None, a, b, b)
            for i in range(N_CASES):
                assert fn(int(a[i]), int(b[i]), 0) == int(vec[i]), \
                    f"{op} diverges at {int(a[i]):#010x}, {int(b[i]):#010x}"

    def test_int_ops_elementwise(self):
        _, intu = _units()
        a, b, c = _operands(61), _operands(62), _operands(63)
        scalar = {
            Opcode.IADD: lambda x, y, z: intu.iadd(x, y, 0),
            Opcode.IMUL: lambda x, y, z: intu.imul(x, y, 0),
            Opcode.IMAD: lambda x, y, z: intu.imad(x, y, z, 0),
            Opcode.SHL: lambda x, y, z: intu.shl(x, y, 0),
            Opcode.SHR: lambda x, y, z: intu.shr(x, y, 0),
            Opcode.LOP_AND: lambda x, y, z: intu.lop("AND", x, y, 0),
            Opcode.LOP_OR: lambda x, y, z: intu.lop("OR", x, y, 0),
            Opcode.LOP_XOR: lambda x, y, z: intu.lop("XOR", x, y, 0),
        }
        for op, fn in scalar.items():
            vec = vector_compute(op, None, a, b, c)
            for i in range(0, N_CASES, 3):
                assert fn(int(a[i]), int(b[i]), int(c[i])) == int(vec[i])

    def test_mov_iset_f2i_i2f_elementwise(self):
        a, b = _operands(71), _operands(72)
        mov = vector_compute(Opcode.MOV, None, a, b, b)
        assert (mov == a).all()
        for compare in CompareOp:
            vec = vector_compute(Opcode.ISET, compare, a, b, b)
            ai = a.view(np.int32)
            bi = b.view(np.int32)
            for i in range(0, N_CASES, 5):
                want = {
                    CompareOp.EQ: ai[i] == bi[i],
                    CompareOp.NE: ai[i] != bi[i],
                    CompareOp.LT: ai[i] < bi[i],
                    CompareOp.LE: ai[i] <= bi[i],
                    CompareOp.GT: ai[i] > bi[i],
                    CompareOp.GE: ai[i] >= bi[i],
                }[compare]
                assert int(vec[i]) == int(want)
        # F2I: scalar SM semantics (trunc toward zero, saturate to
        # 0x80000000 on NaN / |v| >= 2^31); I2F: int32 -> float32 RNE
        edge = np.array([
            float_to_bits(float("nan")), float_to_bits(float("inf")),
            float_to_bits(float("-inf")), float_to_bits(2.0**31),
            float_to_bits(-2.0**31), float_to_bits(2.0**31 - 128),
            float_to_bits(-0.0), float_to_bits(0.5), float_to_bits(-1.5),
        ], dtype=np.uint32)
        stream = np.concatenate([a, edge])
        f2i = vector_compute(Opcode.F2I, None, stream, stream, stream)
        i2f = vector_compute(Opcode.I2F, None, stream, stream, stream)
        for i in range(len(stream)):
            bits = int(stream[i])
            fval = float(np.uint32(bits).view(np.float32))
            if fval != fval or abs(fval) >= 2**31:
                want_f2i = 0x80000000
            else:
                want_f2i = int(fval) & 0xFFFFFFFF
            assert int(f2i[i]) == want_f2i, f"F2I({bits:#010x})"
            signed = bits - (1 << 32) if bits & _SIGN else bits
            assert int(i2f[i]) == float_to_bits(float(np.float32(signed)))

    def test_unsupported_opcodes_return_none(self):
        a = _operands(81, 8)
        for op in (Opcode.FFMA, Opcode.GLD, Opcode.GST, Opcode.FSIN,
                   Opcode.RCP, Opcode.BRA):
            assert op not in VECTOR_OPCODES
            assert vector_compute(op, None, a, a, a) is None


class TestFfmaSpecialCases:
    """Pinned FFMA special-value semantics (the collapsed dead branch in
    ``_fma_special`` made ``c_exp == 0`` addends take the fused path)."""

    @staticmethod
    def _ffma(a, b, c):
        fp32, _ = _units()
        return fp32.ffma(float_to_bits(a) if isinstance(a, float) else a,
                         float_to_bits(b) if isinstance(b, float) else b,
                         float_to_bits(c) if isinstance(c, float) else c, 0)

    def test_zero_addend_takes_fused_path(self):
        # a*b + (+-0) must equal the rounded product, not zero
        assert self._ffma(1.5, 2.0, 0.0) == float_to_bits(3.0)
        assert self._ffma(1.5, 2.0, -0.0) == float_to_bits(3.0)
        assert self._ffma(-1.5, 2.0, 0.0) == float_to_bits(-3.0)

    def test_zero_times_anything_plus_addend(self):
        assert self._ffma(0.0, 123.25, 7.5) == float_to_bits(7.5)
        # (+0)*(x) + (-0): product +0, addend -0 -> +0 under RN
        assert self._ffma(0.0, 123.25, -0.0) == float_to_bits(0.0)
        # (-0)*(x) + (-0): product -0, addend -0 -> -0
        assert self._ffma(-0.0, 123.25, -0.0) == float_to_bits(-0.0)

    def test_inf_times_zero_is_qnan(self):
        assert self._ffma(float("inf"), 0.0, 1.0) == _QNAN
        assert self._ffma(0.0, float("-inf"), 1.0) == _QNAN

    def test_inf_product_with_opposite_inf_addend_is_qnan(self):
        assert self._ffma(float("inf"), 2.0, float("-inf")) == _QNAN
        assert self._ffma(float("-inf"), 2.0, float("inf")) == _QNAN
        # same-signed infinities accumulate
        assert self._ffma(float("inf"), 2.0, float("inf")) == \
            float_to_bits(float("inf"))

    def test_finite_product_with_inf_addend(self):
        assert self._ffma(3.0, 4.0, float("-inf")) == \
            float_to_bits(float("-inf"))

    def test_specials_agree_with_exact_oracle(self):
        specials = [float_to_bits(v) for v in
                    (0.0, -0.0, 1.0, -1.0, float("inf"), float("-inf"),
                     float("nan"), 2.0**-126, 3.5)]
        fp32, _ = _units()
        for a in specials:
            for b in specials:
                for c in specials:
                    assert fp32.ffma(a, b, c, 0) == exact_fma(a, b, c)


# -- reduced-precision formats ------------------------------------------------
def _operands16(seed, exp_mask, n=N_CASES):
    """Raw 16-bit operand stream with ~1/2 specials mixed in."""
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 1 << 16, size=n, dtype=np.uint32)
    shape = rng.integers(0, 4, size=n)
    nonexp = np.uint32(0xFFFF & ~exp_mask)
    bits = np.where(shape == 1, (bits & nonexp) | exp_mask, bits)  # Inf/NaN
    bits = np.where(shape == 2, bits & nonexp, bits)               # denorm/0
    return bits


def _np_f16(op, a_bits, b_bits):
    """numpy float16 reference with the unit's G80 conventions."""
    def flush(bits):
        return np.where((bits & 0x7C00) == 0, bits & 0x8000, bits)

    with np.errstate(all="ignore"):
        a = flush(a_bits).astype(np.uint16).view(np.float16)
        b = flush(b_bits).astype(np.uint16).view(np.float16)
        out = (a + b if op is Opcode.FADD else a * b)
        out = out.view(np.uint16).astype(np.uint32)
    nan = ((out & 0x7C00) == 0x7C00) & ((out & 0x03FF) != 0)
    out = np.where(nan, np.uint32(0x7E00), out)
    denormal = ((out & 0x7C00) == 0) & ((out & 0x03FF) != 0)
    return np.where(denormal, out & np.uint32(0x8000), out)


def _np_bf16(op, a_bits, b_bits):
    """binary32-emulated bfloat16 reference (single-rounded add/mul)."""
    def flush(bits):
        return np.where((bits & 0x7F80) == 0, bits & 0x8000, bits)

    with np.errstate(all="ignore"):
        a = (flush(a_bits) << np.uint32(16)).view(np.float32)
        b = (flush(b_bits) << np.uint32(16)).view(np.float32)
        wide = (a + b if op is Opcode.FADD else a * b)
        bits32 = wide.view(np.uint32)
    nan = np.isnan(wide)
    rounding = np.uint32(0x7FFF) + ((bits32 >> np.uint32(16)) & np.uint32(1))
    out = ((bits32 + rounding) >> np.uint32(16)) & np.uint32(0xFFFF)
    out = np.where(nan, np.uint32(0x7FC0), out)
    denormal = ((out & 0x7F80) == 0) & ((out & 0x007F) != 0)
    return np.where(denormal, out & np.uint32(0x8000), out)


class TestFp16DifferentialFuzz:
    """FP16Unit vs the numpy float16 oracle and the exact fused FMA."""

    def test_fadd_fmul_match_numpy_float16(self):
        unit = FP16Unit(FaultPlane(), 8)
        a, b = _operands16(91, 0x7C00), _operands16(92, 0x7C00)
        for op, fn in ((Opcode.FADD, unit.fadd), (Opcode.FMUL, unit.fmul)):
            want = _np_f16(op, a, b)
            for i in range(N_CASES):
                assert fn(int(a[i]), int(b[i]), 0) == int(want[i]), \
                    f"{op}({int(a[i]):#06x}, {int(b[i]):#06x})"

    def test_ffma_matches_exact_single_rounding(self):
        unit = FP16Unit(FaultPlane(), 8)
        a = _operands16(93, 0x7C00)
        b = _operands16(94, 0x7C00)
        c = _operands16(95, 0x7C00)
        for i in range(N_CASES):
            got = unit.ffma(int(a[i]), int(b[i]), int(c[i]), 0)
            want = exact_fma_fmt(int(a[i]), int(b[i]), int(c[i]), 5, 10)
            assert got == want, (
                f"fp16 ffma({int(a[i]):#06x}, {int(b[i]):#06x}, "
                f"{int(c[i]):#06x}): unit {got:#06x} != exact {want:#06x}")

    def test_special_value_pins(self):
        unit = FP16Unit(FaultPlane(), 8)
        # every NaN canonicalises to 0x7E00; denormals flush in and out
        assert unit.fadd(0x7C01, 0x3C00, 0) == 0x7E00  # sNaN + 1.0
        assert unit.fmul(0x7C00, 0x0000, 0) == 0x7E00  # Inf * 0
        assert unit.fadd(0x0001, 0x8001, 0) == 0x0000  # denorm FTZ in
        assert unit.fmul(0x0400, 0x3800, 0) == 0x0000  # underflow FTZ out
        assert unit.fmul(0x7BFF, 0x7BFF, 0) == 0x7C00  # overflow -> Inf


class TestBf16DifferentialFuzz:
    """BF16Unit vs the f32-emulated oracle and the exact fused FMA."""

    def test_fadd_fmul_match_f32_emulation(self):
        unit = BF16Unit(FaultPlane(), 8)
        a, b = _operands16(101, 0x7F80), _operands16(102, 0x7F80)
        for op, fn in ((Opcode.FADD, unit.fadd), (Opcode.FMUL, unit.fmul)):
            want = _np_bf16(op, a, b)
            for i in range(N_CASES):
                assert fn(int(a[i]), int(b[i]), 0) == int(want[i]), \
                    f"{op}({int(a[i]):#06x}, {int(b[i]):#06x})"

    def test_ffma_matches_exact_single_rounding(self):
        unit = BF16Unit(FaultPlane(), 8)
        a = _operands16(103, 0x7F80)
        b = _operands16(104, 0x7F80)
        c = _operands16(105, 0x7F80)
        for i in range(N_CASES):
            got = unit.ffma(int(a[i]), int(b[i]), int(c[i]), 0)
            want = exact_fma_fmt(int(a[i]), int(b[i]), int(c[i]), 8, 7)
            assert got == want, (
                f"bf16 ffma({int(a[i]):#06x}, {int(b[i]):#06x}, "
                f"{int(c[i]):#06x}): unit {got:#06x} != exact {want:#06x}")

    def test_special_value_pins(self):
        unit = BF16Unit(FaultPlane(), 8)
        assert unit.fadd(0x7F81, 0x3F80, 0) == 0x7FC0  # sNaN + 1.0
        assert unit.fmul(0x7F80, 0x0000, 0) == 0x7FC0  # Inf * 0
        assert unit.fadd(0x0001, 0x8001, 0) == 0x0000  # denorm FTZ in
        assert unit.fmul(0x0080, 0x3F00, 0) == 0x0000  # underflow FTZ out
        assert unit.fmul(0x7F7F, 0x7F7F, 0) == 0x7F80  # overflow -> Inf


class TestReducedPrecisionVectorKernels:
    """fp16/bf16 vector kernels vs scalar units, including the low-16
    convention: upper bits of the universe word must be ignored by both."""

    def test_fp16_elementwise(self):
        unit = FP16Unit(FaultPlane(), 8)
        rng = np.random.default_rng(111)
        upper = rng.integers(0, 1 << 16, size=N_CASES, dtype=np.uint32)
        a = _operands16(112, 0x7C00) | (upper << np.uint32(16))
        b = _operands16(113, 0x7C00)
        for op, fn in ((Opcode.FADD, unit.fadd), (Opcode.FMUL, unit.fmul)):
            vec = vector_compute(op, None, a, b, b, precision="fp16")
            for i in range(N_CASES):
                assert fn(int(a[i]), int(b[i]), 0) == int(vec[i]), \
                    f"fp16 {op} diverges at {int(a[i]):#010x}, " \
                    f"{int(b[i]):#06x}"

    def test_bf16_elementwise(self):
        unit = BF16Unit(FaultPlane(), 8)
        rng = np.random.default_rng(121)
        upper = rng.integers(0, 1 << 16, size=N_CASES, dtype=np.uint32)
        a = _operands16(122, 0x7F80) | (upper << np.uint32(16))
        b = _operands16(123, 0x7F80)
        for op, fn in ((Opcode.FADD, unit.fadd), (Opcode.FMUL, unit.fmul)):
            vec = vector_compute(op, None, a, b, b, precision="bf16")
            for i in range(N_CASES):
                assert fn(int(a[i]), int(b[i]), 0) == int(vec[i]), \
                    f"bf16 {op} diverges at {int(a[i]):#010x}, " \
                    f"{int(b[i]):#06x}"

    def test_unknown_precision_rejected(self):
        a = _operands16(131, 0x7C00, 4)
        try:
            vector_compute(Opcode.FADD, None, a, a, a, precision="fp8")
        except ValueError:
            pass
        else:
            raise AssertionError("fp8 should be rejected")
