"""Seeded differential fuzz of the functional-unit datapaths.

Three oracles pin the golden-mode datapath semantics:

* ``FP32Unit.fadd``/``fmul`` against numpy ``float32`` arithmetic with
  the unit's G80 conventions applied (FTZ on input and output, every
  NaN canonicalised to ``0x7FC00000``);
* ``FP32Unit.ffma`` against an exact :mod:`fractions`-based
  single-rounding fused multiply-add — numpy cannot express this, which
  is exactly why the fused path deserves its own oracle;
* ``IntUnit`` ops against wrapping numpy ``uint32`` arithmetic.

The same operand streams then validate the vectorized numpy kernels
(:mod:`repro.gpu.vector`) element-by-element against the scalar units —
the bit-identity contract the fault-parallel replay engine relies on
for dirty-lane recomputation.

Operands are raw 32-bit patterns with a forced share of specials
(Inf/NaN exponents, denormals, zeros), not just well-behaved floats.
"""

from fractions import Fraction

import numpy as np

from repro.gpu.bits import float_to_bits
from repro.gpu.fault_plane import FaultPlane
from repro.gpu.fp32 import FP32Unit
from repro.gpu.intu import IntUnit
from repro.gpu.isa import CompareOp, Opcode
from repro.gpu.vector import VECTOR_OPCODES, vector_compute

N_CASES = 2500
_QNAN = 0x7FC00000
_EXP = 0x7F800000
_MANT = 0x007FFFFF
_SIGN = 0x80000000


def _operands(seed, n=N_CASES):
    """Raw uint32 operand stream with ~1/2 specials mixed in."""
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 1 << 32, size=n, dtype=np.uint32)
    shape = rng.integers(0, 4, size=n)
    bits = np.where(shape == 1, (bits & 0x807FFFFF) | _EXP, bits)  # Inf/NaN
    bits = np.where(shape == 2, bits & 0x807FFFFF, bits)           # denorm/0
    return bits


def _units():
    plane = FaultPlane()
    return FP32Unit(plane, 8), IntUnit(plane, 8)


# -- numpy float32 reference (G80 conventions) -------------------------------
def _np_f32(op, a_bits, b_bits):
    def flush(bits):
        return np.where((bits & _EXP) == 0, bits & _SIGN, bits)

    with np.errstate(all="ignore"):
        a = flush(a_bits).view(np.float32)
        b = flush(b_bits).view(np.float32)
        out = (a + b if op is Opcode.FADD else a * b).view(np.uint32)
    nan = ((out & _EXP) == _EXP) & ((out & _MANT) != 0)
    out = np.where(nan, np.uint32(_QNAN), out)
    denormal = ((out & _EXP) == 0) & ((out & _MANT) != 0)
    return np.where(denormal, out & _SIGN, out)


# -- exact fused multiply-add reference --------------------------------------
def _decompose(bits):
    sign = bits >> 31
    exp = bits >> 23 & 0xFF
    mant = bits & _MANT
    if exp == 0xFF:
        return ("nan" if mant else "inf", sign, None)
    if exp == 0:  # FTZ input
        return ("num", sign, Fraction(0))
    return ("num", sign,
            Fraction((1 << 23) | mant, 1 << 23) * Fraction(2) ** (exp - 127))


def _round_f32(sign, magnitude):
    """Round a positive Fraction to float32 bits: RNE, FTZ, Inf overflow."""
    exp = 0
    while Fraction(2) ** exp > magnitude:
        exp -= 1
    while Fraction(2) ** (exp + 1) <= magnitude:
        exp += 1
    if exp < -126:
        # denormal range: round on the denormal grid, then flush to zero
        q = magnitude / Fraction(2) ** -149
        integer = int(q)
        rem = q - integer
        if rem > Fraction(1, 2) or (rem == Fraction(1, 2) and integer & 1):
            integer += 1
        if integer >= 1 << 23:  # rounded up into the smallest normal
            return (sign << 31) | (1 << 23)
        return sign << 31
    q = magnitude / Fraction(2) ** (exp - 23)
    integer = int(q)
    rem = q - integer
    if rem > Fraction(1, 2) or (rem == Fraction(1, 2) and integer & 1):
        integer += 1
    if integer >= 1 << 24:
        integer >>= 1
        exp += 1
    if exp > 127:
        return (sign << 31) | _EXP
    return (sign << 31) | ((exp + 127) << 23) | (integer & _MANT)


def exact_fma(a_bits, b_bits, c_bits):
    """Single-rounding float32 FMA with G80 FTZ/NaN conventions."""
    da, db, dc = (_decompose(x) for x in (a_bits, b_bits, c_bits))
    if "nan" in (da[0], db[0], dc[0]):
        return _QNAN
    if da[0] == "inf" or db[0] == "inf":
        other = db if da[0] == "inf" else da
        if other[0] == "num" and other[2] == 0:
            return _QNAN  # Inf x 0
        product_sign = da[1] ^ db[1]
        if dc[0] == "inf" and dc[1] != product_sign:
            return _QNAN  # Inf - Inf
        return (product_sign << 31) | _EXP
    if dc[0] == "inf":
        return (dc[1] << 31) | _EXP
    product = (-1) ** da[1] * da[2] * (-1) ** db[1] * db[2]
    addend = (-1) ** dc[1] * dc[2]
    exact = product + addend
    if exact == 0:
        if product == 0 and addend == 0:
            # both zero: IEEE keeps -0 only when every term is negative
            return (da[1] ^ db[1]) & dc[1] and _SIGN or 0
        return 0  # exact cancellation rounds to +0 in round-to-nearest
    sign = 0 if exact > 0 else 1
    return _round_f32(sign, abs(exact))


# -- the fuzz ----------------------------------------------------------------
class TestFp32DifferentialFuzz:
    def test_fadd_matches_numpy_float32(self):
        fp32, _ = _units()
        a, b = _operands(11), _operands(12)
        want = _np_f32(Opcode.FADD, a, b)
        for i in range(N_CASES):
            assert fp32.fadd(int(a[i]), int(b[i]), 0) == int(want[i]), \
                f"fadd({int(a[i]):#010x}, {int(b[i]):#010x})"

    def test_fmul_matches_numpy_float32(self):
        fp32, _ = _units()
        a, b = _operands(21), _operands(22)
        want = _np_f32(Opcode.FMUL, a, b)
        for i in range(N_CASES):
            assert fp32.fmul(int(a[i]), int(b[i]), 0) == int(want[i]), \
                f"fmul({int(a[i]):#010x}, {int(b[i]):#010x})"

    def test_ffma_matches_exact_single_rounding(self):
        fp32, _ = _units()
        a, b, c = _operands(31), _operands(32), _operands(33)
        for i in range(N_CASES):
            got = fp32.ffma(int(a[i]), int(b[i]), int(c[i]), 0)
            want = exact_fma(int(a[i]), int(b[i]), int(c[i]))
            assert got == want, (
                f"ffma({int(a[i]):#010x}, {int(b[i]):#010x}, "
                f"{int(c[i]):#010x}): unit {got:#010x} != exact "
                f"{want:#010x}")


class TestIntDifferentialFuzz:
    def test_int_ops_match_numpy_uint32(self):
        _, intu = _units()
        a, b, c = _operands(41), _operands(42), _operands(43)
        with np.errstate(all="ignore"):
            refs = {
                "iadd": a + b,
                "imul": a * b,
                "imad": a * b + c,
                "shl": a << (b & np.uint32(31)),
                "shr": a >> (b & np.uint32(31)),
                "and": a & b,
                "or": a | b,
                "xor": a ^ b,
            }
        for i in range(N_CASES):
            x, y, z = int(a[i]), int(b[i]), int(c[i])
            assert intu.iadd(x, y, 0) == int(refs["iadd"][i])
            assert intu.imul(x, y, 0) == int(refs["imul"][i])
            assert intu.imad(x, y, z, 0) == int(refs["imad"][i])
            assert intu.shl(x, y, 0) == int(refs["shl"][i])
            assert intu.shr(x, y, 0) == int(refs["shr"][i])
            for lop in ("and", "or", "xor"):
                assert intu.lop(lop.upper(), x, y, 0) == int(refs[lop][i])


class TestVectorKernelsMatchScalarUnits:
    """The vector kernels must be bit-identical to the scalar units —
    the replay engine substitutes one for the other on dirty lanes."""

    def test_fadd_fmul_elementwise(self):
        fp32, _ = _units()
        a, b = _operands(51), _operands(52)
        for op, fn in ((Opcode.FADD, fp32.fadd), (Opcode.FMUL, fp32.fmul)):
            vec = vector_compute(op, None, a, b, b)
            for i in range(N_CASES):
                assert fn(int(a[i]), int(b[i]), 0) == int(vec[i]), \
                    f"{op} diverges at {int(a[i]):#010x}, {int(b[i]):#010x}"

    def test_int_ops_elementwise(self):
        _, intu = _units()
        a, b, c = _operands(61), _operands(62), _operands(63)
        scalar = {
            Opcode.IADD: lambda x, y, z: intu.iadd(x, y, 0),
            Opcode.IMUL: lambda x, y, z: intu.imul(x, y, 0),
            Opcode.IMAD: lambda x, y, z: intu.imad(x, y, z, 0),
            Opcode.SHL: lambda x, y, z: intu.shl(x, y, 0),
            Opcode.SHR: lambda x, y, z: intu.shr(x, y, 0),
            Opcode.LOP_AND: lambda x, y, z: intu.lop("AND", x, y, 0),
            Opcode.LOP_OR: lambda x, y, z: intu.lop("OR", x, y, 0),
            Opcode.LOP_XOR: lambda x, y, z: intu.lop("XOR", x, y, 0),
        }
        for op, fn in scalar.items():
            vec = vector_compute(op, None, a, b, c)
            for i in range(0, N_CASES, 3):
                assert fn(int(a[i]), int(b[i]), int(c[i])) == int(vec[i])

    def test_mov_iset_f2i_i2f_elementwise(self):
        a, b = _operands(71), _operands(72)
        mov = vector_compute(Opcode.MOV, None, a, b, b)
        assert (mov == a).all()
        for compare in CompareOp:
            vec = vector_compute(Opcode.ISET, compare, a, b, b)
            ai = a.view(np.int32)
            bi = b.view(np.int32)
            for i in range(0, N_CASES, 5):
                want = {
                    CompareOp.EQ: ai[i] == bi[i],
                    CompareOp.NE: ai[i] != bi[i],
                    CompareOp.LT: ai[i] < bi[i],
                    CompareOp.LE: ai[i] <= bi[i],
                    CompareOp.GT: ai[i] > bi[i],
                    CompareOp.GE: ai[i] >= bi[i],
                }[compare]
                assert int(vec[i]) == int(want)
        # F2I: scalar SM semantics (trunc toward zero, saturate to
        # 0x80000000 on NaN / |v| >= 2^31); I2F: int32 -> float32 RNE
        edge = np.array([
            float_to_bits(float("nan")), float_to_bits(float("inf")),
            float_to_bits(float("-inf")), float_to_bits(2.0**31),
            float_to_bits(-2.0**31), float_to_bits(2.0**31 - 128),
            float_to_bits(-0.0), float_to_bits(0.5), float_to_bits(-1.5),
        ], dtype=np.uint32)
        stream = np.concatenate([a, edge])
        f2i = vector_compute(Opcode.F2I, None, stream, stream, stream)
        i2f = vector_compute(Opcode.I2F, None, stream, stream, stream)
        for i in range(len(stream)):
            bits = int(stream[i])
            fval = float(np.uint32(bits).view(np.float32))
            if fval != fval or abs(fval) >= 2**31:
                want_f2i = 0x80000000
            else:
                want_f2i = int(fval) & 0xFFFFFFFF
            assert int(f2i[i]) == want_f2i, f"F2I({bits:#010x})"
            signed = bits - (1 << 32) if bits & _SIGN else bits
            assert int(i2f[i]) == float_to_bits(float(np.float32(signed)))

    def test_unsupported_opcodes_return_none(self):
        a = _operands(81, 8)
        for op in (Opcode.FFMA, Opcode.GLD, Opcode.GST, Opcode.FSIN,
                   Opcode.RCP, Opcode.BRA):
            assert op not in VECTOR_OPCODES
            assert vector_compute(op, None, a, a, a) is None


class TestFfmaSpecialCases:
    """Pinned FFMA special-value semantics (the collapsed dead branch in
    ``_fma_special`` made ``c_exp == 0`` addends take the fused path)."""

    @staticmethod
    def _ffma(a, b, c):
        fp32, _ = _units()
        return fp32.ffma(float_to_bits(a) if isinstance(a, float) else a,
                         float_to_bits(b) if isinstance(b, float) else b,
                         float_to_bits(c) if isinstance(c, float) else c, 0)

    def test_zero_addend_takes_fused_path(self):
        # a*b + (+-0) must equal the rounded product, not zero
        assert self._ffma(1.5, 2.0, 0.0) == float_to_bits(3.0)
        assert self._ffma(1.5, 2.0, -0.0) == float_to_bits(3.0)
        assert self._ffma(-1.5, 2.0, 0.0) == float_to_bits(-3.0)

    def test_zero_times_anything_plus_addend(self):
        assert self._ffma(0.0, 123.25, 7.5) == float_to_bits(7.5)
        # (+0)*(x) + (-0): product +0, addend -0 -> +0 under RN
        assert self._ffma(0.0, 123.25, -0.0) == float_to_bits(0.0)
        # (-0)*(x) + (-0): product -0, addend -0 -> -0
        assert self._ffma(-0.0, 123.25, -0.0) == float_to_bits(-0.0)

    def test_inf_times_zero_is_qnan(self):
        assert self._ffma(float("inf"), 0.0, 1.0) == _QNAN
        assert self._ffma(0.0, float("-inf"), 1.0) == _QNAN

    def test_inf_product_with_opposite_inf_addend_is_qnan(self):
        assert self._ffma(float("inf"), 2.0, float("-inf")) == _QNAN
        assert self._ffma(float("-inf"), 2.0, float("inf")) == _QNAN
        # same-signed infinities accumulate
        assert self._ffma(float("inf"), 2.0, float("inf")) == \
            float_to_bits(float("inf"))

    def test_finite_product_with_inf_addend(self):
        assert self._ffma(3.0, 4.0, float("-inf")) == \
            float_to_bits(float("-inf"))

    def test_specials_agree_with_exact_oracle(self):
        specials = [float_to_bits(v) for v in
                    (0.0, -0.0, 1.0, -1.0, float("inf"), float("-inf"),
                     float("nan"), 2.0**-126, 3.5)]
        fp32, _ = _units()
        for a in specials:
            for b in specials:
                for c in specials:
                    assert fp32.ffma(a, b, c, 0) == exact_fma(a, b, c)
