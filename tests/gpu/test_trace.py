"""Execution-trace facility tests."""

import pytest

from repro.gpu import Opcode, StreamingMultiprocessor
from repro.gpu.program import ProgramBuilder
from repro.gpu.sm import TraceEntry


def _program():
    b = ProgramBuilder("t")
    b.mov(1, b.imm(1))
    b.iadd(2, 1, 1)
    b.gst(0, 2, offset=0x300)
    b.exit()
    return b.build()


class TestTrace:
    def test_disabled_by_default(self):
        sm = StreamingMultiprocessor()
        result = sm.launch(_program(), 8)
        assert result.trace is None

    def test_records_every_dispatch(self):
        sm = StreamingMultiprocessor()
        result = sm.launch(_program(), 8, trace=True)
        assert [e.opcode for e in result.trace] == \
            ["MOV", "IADD", "GST", "EXIT"]
        assert all(isinstance(e, TraceEntry) for e in result.trace)
        assert all(e.warp_id == 0 for e in result.trace)

    def test_cycles_monotone(self):
        sm = StreamingMultiprocessor()
        result = sm.launch(_program(), 8, trace=True)
        cycles = [e.cycle for e in result.trace]
        assert cycles == sorted(cycles)

    def test_multi_warp_interleaving(self):
        sm = StreamingMultiprocessor()
        result = sm.launch(_program(), 64, trace=True)
        warps = {e.warp_id for e in result.trace}
        assert warps == {0, 1}
        # round-robin: the first two dispatches are different warps
        assert result.trace[0].warp_id != result.trace[1].warp_id

    def test_trace_matches_program_counters(self):
        sm = StreamingMultiprocessor()
        result = sm.launch(_program(), 8, trace=True)
        assert [e.pc for e in result.trace] == [0, 1, 2, 3]
