"""Golden-trace recorder + passive hot-path tests.

Covers the :class:`~repro.gpu.trace.GoldenTraceRecorder` contract the
vectorized fault engine replays against (dispatch schedule, per-beat
operands/results, branch votes, latch-schedule bisection), the
recorder/fault mutual-exclusion guards, and the passive fast path: a
golden run (no fault, no recorder) must never dispatch a single
``plane.latch`` call — including through the SFU controller, whose
unconditional latching used to dominate golden wall-clock time.
"""

import pytest

from repro.gpu.bits import float_to_bits
from repro.gpu.fault_plane import TransientFault
from repro.gpu.isa import CompareOp, Opcode
from repro.gpu.program import ProgramBuilder
from repro.gpu.sm import StreamingMultiprocessor
from repro.gpu.trace import GoldenTraceRecorder


def _fadd_program():
    b = ProgramBuilder("rec")
    b.gld(2, 0, offset=0x100)
    b.gld(3, 0, offset=0x200)
    b.fadd(5, 2, 3)
    b.gst(0, 5, offset=0x300)
    b.exit()
    return b.build()


def _fadd_image(values_a, values_b):
    return {0x100: [float_to_bits(v) for v in values_a],
            0x200: [float_to_bits(v) for v in values_b]}


class TestDispatchSchedule:
    def test_steps_mirror_executed_instructions(self):
        sm = StreamingMultiprocessor()
        rec = GoldenTraceRecorder()
        sm.launch(_fadd_program(), 2,
                  memory_image=_fadd_image([1.5, -2.0], [0.25, 8.0]),
                  recorder=rec)
        opcodes = [s.opcode for s in rec.steps]
        assert opcodes == [Opcode.GLD.value, Opcode.GLD.value,
                           Opcode.FADD.value, Opcode.GST.value,
                           Opcode.EXIT.value]
        # record_ctrl runs for every dispatched step, EXIT included
        assert all(s.ctrl is not None for s in rec.steps)
        assert rec.total_cycles > 0

    def test_beat_records_carry_golden_operands_and_results(self):
        sm = StreamingMultiprocessor()
        rec = GoldenTraceRecorder()
        sm.launch(_fadd_program(), 2,
                  memory_image=_fadd_image([1.5, -2.0], [0.25, 8.0]),
                  recorder=rec)
        (fadd_step,) = [s for s in rec.steps
                        if s.opcode == Opcode.FADD.value]
        beat = fadd_step.beats[0]
        assert beat.lanes[:2] == (0, 1)
        assert beat.group_mask & 0b11 == 0b11
        assert beat.operands[0][:2] == (float_to_bits(1.5),
                                        float_to_bits(0.25))
        assert beat.results[:2] == (float_to_bits(1.75),
                                    float_to_bits(6.0))

    def test_branch_votes_are_post_negation_decisions(self):
        b = ProgramBuilder("loop")
        b.mov(1, b.imm(0))
        b.label("top")
        b.iadd(1, 1, b.imm(1))
        b.iset(b.pred(0), 1, b.imm(3), CompareOp.LT)
        b.bra("top", predicate=b.pred(0))
        b.gst(0, 1, offset=0x300)
        b.exit()
        sm = StreamingMultiprocessor()
        rec = GoldenTraceRecorder()
        sm.launch(b.build(), 2, recorder=rec)
        branches = [s.branch for s in rec.steps if s.branch is not None]
        # counter hits 1, 2 (taken) then 3 (fall through), both threads
        assert len(branches) == 3
        assert [sorted(br.votes) for br in branches] == [
            [(0, True), (1, True)],
            [(0, True), (1, True)],
            [(0, False), (1, False)],
        ]


class TestLatchSchedule:
    def _recorded(self):
        sm = StreamingMultiprocessor()
        rec = GoldenTraceRecorder()
        sm.launch(_fadd_program(), 2,
                  memory_image=_fadd_image([1.5, -2.0], [0.25, 8.0]),
                  recorder=rec)
        return sm, rec

    def test_fp32_latches_land_in_the_schedule(self):
        sm, rec = self._recorded()
        keys = [ff.key for ff in sm.plane.flipflops("fp32")
                if rec.first_latch_at_or_after(ff.key, 0) is not None]
        assert keys, "an FADD run must latch fp32 stage registers"
        for key in keys:
            cycle, step, beat = rec.first_latch_at_or_after(key, 0)
            assert 0 <= cycle <= rec.total_cycles
            assert 0 <= step < len(rec.steps)
            assert beat >= GoldenTraceRecorder.NO_BEAT

    def test_bisection_is_at_or_after(self):
        _, rec = self._recorded()
        key = next(k for k in rec._event_cycles)
        cycles = rec._event_cycles[key]
        assert cycles == sorted(cycles)
        first = rec.first_latch_at_or_after(key, 0)
        # querying at the event's own cycle still returns it (a latch at
        # the injection instant consumes the transient, mirroring
        # FaultPlane.latch's arming rule)
        assert rec.first_latch_at_or_after(key, first[0]) == first
        # past the last event the transient decays unconsumed
        assert rec.first_latch_at_or_after(key, cycles[-1] + 1) is None

    def test_unknown_key_never_fires(self):
        _, rec = self._recorded()
        assert rec.first_latch_at_or_after(("fp32", "no.such", 0), 0) is None


class TestGuards:
    def test_launch_rejects_recorder_with_fault(self):
        sm = StreamingMultiprocessor()
        ff = sm.plane.flipflops("fp32")[0]
        fault = TransientFault(ff, bit=0, cycle=1)
        with pytest.raises(ValueError, match="fault-free"):
            sm.launch(_fadd_program(), 1,
                      memory_image=_fadd_image([1.0], [1.0]),
                      fault=fault, recorder=GoldenTraceRecorder())

    def test_arm_while_recording_is_rejected(self):
        sm = StreamingMultiprocessor()
        sm.plane.attach_recorder(GoldenTraceRecorder())
        ff = sm.plane.flipflops("fp32")[0]
        with pytest.raises(RuntimeError, match="recorder"):
            sm.plane.arm(TransientFault(ff, bit=0, cycle=1))
        sm.plane.detach_recorder()

    def test_attach_while_armed_is_rejected(self):
        sm = StreamingMultiprocessor()
        ff = sm.plane.flipflops("fp32")[0]
        sm.plane.arm(TransientFault(ff, bit=0, cycle=1))
        with pytest.raises(RuntimeError, match="armed"):
            sm.plane.attach_recorder(GoldenTraceRecorder())
        sm.plane.disarm()


class TestPassiveHotPath:
    """Golden runs must never reach ``plane.latch`` — the guards in every
    functional unit (including ``SfuController._latch``, the historical
    hot spot) skip the dispatch entirely while the plane is passive."""

    def test_golden_run_makes_zero_latch_calls(self, monkeypatch):
        sm = StreamingMultiprocessor()

        def boom(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("plane.latch reached during a golden run")

        monkeypatch.setattr(sm.plane, "latch", boom)
        b = ProgramBuilder("mix")
        b.gld(2, 0, offset=0x100)
        b.fsin(3, 2)          # SFU: controller + datapath stages
        b.fexp(4, 3)
        b.rcp(5, 4)
        b.fadd(6, 3, 4)       # fp32 pipeline
        b.ffma(7, 3, 4, 6)
        b.iadd(8, 0, 0)       # int pipeline
        b.gst(0, 7, offset=0x300)
        b.exit()
        image = {0x100: [float_to_bits(0.5), float_to_bits(1.25)]}
        result = sm.launch(b.build(), 2, memory_image=image)
        assert result.cycles > 0
        assert sm.plane.passive

    def test_recorder_reenables_latch_dispatch(self):
        sm = StreamingMultiprocessor()
        rec = GoldenTraceRecorder()
        b = ProgramBuilder("sfu")
        b.gld(2, 0, offset=0x100)
        b.fsin(3, 2)
        b.gst(0, 3, offset=0x300)
        b.exit()
        sm.launch(b.build(), 1,
                  memory_image={0x100: [float_to_bits(0.5)]}, recorder=rec)
        sfu_keys = [ff.key for ff in sm.plane.flipflops("sfu")
                    if rec.first_latch_at_or_after(ff.key, 0) is not None]
        assert sfu_keys, "recording must capture SFU stage latches again"
