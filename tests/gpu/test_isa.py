"""ISA definition tests."""

import pytest

from repro.gpu.isa import (
    CHARACTERIZED_OPCODES,
    CompareOp,
    Immediate,
    Instruction,
    Opcode,
    OPCODE_DECODING,
    OPCODE_ENCODING,
    Predicate,
    Register,
)


class TestOperands:
    def test_register(self):
        reg = Register(5)
        assert reg.value == 5

    def test_register_negative_rejected(self):
        with pytest.raises(ValueError):
            Register(-1)

    def test_predicate_range(self):
        Predicate(0)
        Predicate(7)
        with pytest.raises(ValueError):
            Predicate(8)

    def test_immediate_wraps_to_u32(self):
        assert Immediate(-1).value == 0xFFFFFFFF


class TestInstructionValidation:
    def test_characterized_opcode_count(self):
        # the paper characterises exactly 12 opcodes
        assert len(CHARACTERIZED_OPCODES) == 12

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.FADD, Register(0), (Register(1),))
        with pytest.raises(ValueError):
            Instruction(Opcode.FFMA, Register(0), (Register(1), Register(2)))

    def test_bra_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BRA)
        Instruction(Opcode.BRA, target="loop")

    def test_iset_requires_compare(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ISET, Register(0),
                        (Register(1), Register(2)))
        Instruction(Opcode.ISET, Register(0), (Register(1), Register(2)),
                    compare=CompareOp.LT)

    def test_destination_required_for_arithmetic(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.FADD, None, (Register(1), Register(2)))

    def test_gst_needs_no_destination(self):
        inst = Instruction(Opcode.GST, None, (Register(1), Register(2)))
        assert inst.dest is None

    def test_memory_offset(self):
        inst = Instruction(Opcode.GLD, Register(2), (Register(0),),
                           offset=0x100)
        assert inst.is_memory and inst.offset == 0x100


class TestUnitRouting:
    def test_fp32_unit_opcodes(self):
        assert Instruction(
            Opcode.FADD, Register(0),
            (Register(1), Register(2))).uses_fp32_unit

    def test_int_unit_opcodes(self):
        assert Instruction(
            Opcode.IMUL, Register(0),
            (Register(1), Register(2))).uses_int_unit

    def test_sfu_opcodes(self):
        assert Instruction(Opcode.FSIN, Register(0), (Register(1),)).uses_sfu


class TestEncoding:
    def test_roundtrip(self):
        for opcode in Opcode:
            assert OPCODE_DECODING[OPCODE_ENCODING[opcode]] is opcode

    def test_encodings_are_dense_and_unique(self):
        codes = set(OPCODE_ENCODING.values())
        assert len(codes) == len(Opcode)
        assert max(codes) < 256  # fits the 8-bit pipeline opcode register
