"""Global-memory and register-file tests."""

import pytest

from repro.errors import MemoryFaultError, RegisterFaultError
from repro.gpu.memory import GlobalMemory, RegisterFile


class TestGlobalMemory:
    def test_store_load(self):
        mem = GlobalMemory(64)
        mem.store(10, 0xDEADBEEF)
        assert mem.load(10) == 0xDEADBEEF

    def test_values_masked_to_u32(self):
        mem = GlobalMemory(8)
        mem.store(0, 2**40 + 5)
        assert mem.load(0) == 5

    def test_bounds_checked(self):
        mem = GlobalMemory(8)
        with pytest.raises(MemoryFaultError):
            mem.load(8)
        with pytest.raises(MemoryFaultError):
            mem.store(-1, 0)

    def test_float_roundtrip(self):
        mem = GlobalMemory(8)
        mem.store_float(3, 1.25)
        assert mem.load_float(3) == 1.25

    def test_bulk_helpers(self):
        mem = GlobalMemory(32)
        mem.write_words(4, [1, 2, 3])
        assert mem.read_words(4, 3) == [1, 2, 3]
        mem.write_floats(10, [0.5, -2.0])
        assert mem.read_floats(10, 2) == [0.5, -2.0]

    def test_snapshot_is_copy(self):
        mem = GlobalMemory(4)
        snap = mem.snapshot()
        mem.store(0, 99)
        assert snap[0] == 0

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            GlobalMemory(0)


class TestRegisterFile:
    def test_read_write(self):
        regs = RegisterFile(4, 16)
        regs.write(2, 5, 0xABCD)
        assert regs.read(2, 5) == 0xABCD

    def test_register_bounds(self):
        regs = RegisterFile(4, 16)
        with pytest.raises(RegisterFaultError):
            regs.read(0, 16)
        with pytest.raises(RegisterFaultError):
            regs.write(0, 99, 0)

    def test_thread_bounds(self):
        regs = RegisterFile(4, 16)
        with pytest.raises(RegisterFaultError):
            regs.read(4, 0)

    def test_predicates(self):
        regs = RegisterFile(2)
        assert not regs.read_predicate(0, 0)
        regs.write_predicate(0, 0, True)
        assert regs.read_predicate(0, 0)
        with pytest.raises(RegisterFaultError):
            regs.read_predicate(0, 8)

    def test_values_masked_to_u32(self):
        regs = RegisterFile(1)
        regs.write(0, 0, -1)
        assert regs.read(0, 0) == 0xFFFFFFFF
