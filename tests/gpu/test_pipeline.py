"""Pipeline-register tests."""

import pytest

from repro.errors import IllegalInstructionError
from repro.gpu.fault_plane import FaultPlane, FlipFlop, TransientFault
from repro.gpu.isa import CompareOp, Instruction, Opcode, Register
from repro.gpu.pipeline import PipelineRegisters


def _fadd():
    return Instruction(Opcode.FADD, Register(5), (Register(1), Register(2)))


@pytest.fixture
def pipeline():
    return PipelineRegisters(FaultPlane())


class TestDecode:
    def test_roundtrip_fields(self, pipeline):
        ctrl = pipeline.latch_decode(_fadd(), warp_id=1, pc=7,
                                     branch_target=0, warp_mask=0xFFFF)
        assert ctrl.opcode is Opcode.FADD
        assert ctrl.dest == 5
        assert ctrl.write_enable
        assert ctrl.src_sel[:2] == (1, 2)
        assert ctrl.src_sel[2] == 0xFF
        assert ctrl.warp_id == 1 and ctrl.pc == 7
        assert ctrl.warp_mask == 0xFFFF

    def test_memory_offset_rides_imm(self, pipeline):
        inst = Instruction(Opcode.GLD, Register(2), (Register(0),),
                           offset=0x180)
        ctrl = pipeline.latch_decode(inst, 0, 0, 0, 0xFF)
        assert ctrl.imm == 0x180

    def test_iset_compare(self, pipeline):
        inst = Instruction(Opcode.ISET, Register(4),
                           (Register(1), Register(2)),
                           compare=CompareOp.GE)
        ctrl = pipeline.latch_decode(inst, 0, 0, 0, 0xFF)
        assert ctrl.compare is CompareOp.GE

    def test_gst_has_no_write_enable(self, pipeline):
        inst = Instruction(Opcode.GST, None, (Register(1), Register(2)))
        ctrl = pipeline.latch_decode(inst, 0, 0, 0, 0xFF)
        assert not ctrl.write_enable


class TestStructure:
    def test_control_fraction_near_paper(self, pipeline):
        """The paper reports ~16% of pipeline flip-flops are control."""
        plane = pipeline.plane
        total = plane.module_size("pipeline")
        control = sum(ff.width for ff in plane.flipflops("pipeline")
                      if ff.kind == "control")
        assert 0.10 <= control / total <= 0.22

    def test_slot_registers_cover_the_warp(self, pipeline):
        slots = {ff.lane for ff in pipeline.plane.flipflops("pipeline")
                 if ff.name == "de.src_a"}
        assert slots == set(range(32))


class TestFaults:
    def test_opcode_fault_can_be_illegal(self):
        plane = FaultPlane()
        pipeline = PipelineRegisters(plane)
        ff = FlipFlop("pipeline", "de.opcode", 8, -1, "control")
        plane.arm(TransientFault(ff, 7, cycle=0, window=5))
        with pytest.raises(IllegalInstructionError):
            pipeline.latch_decode(_fadd(), 0, 0, 0, 0xFF)

    def test_opcode_fault_can_morph_instruction(self):
        plane = FaultPlane()
        pipeline = PipelineRegisters(plane)
        ff = FlipFlop("pipeline", "de.opcode", 8, -1, "control")
        plane.arm(TransientFault(ff, 0, cycle=0, window=5))
        ctrl = pipeline.latch_decode(_fadd(), 0, 0, 0, 0xFF)
        assert ctrl.opcode is not Opcode.FADD  # neighbouring encoding

    def test_dest_fault_redirects_writeback(self):
        plane = FaultPlane()
        pipeline = PipelineRegisters(plane)
        ff = FlipFlop("pipeline", "wb.dest", 8, -1, "control")
        plane.arm(TransientFault(ff, 1, cycle=0, window=5))
        _, dest, _, _, _ = pipeline.latch_writeback(
            list(range(8)), [0] * 8, dest=5, wen=True, group_mask=0xFF,
            warp_mask=(1 << 32) - 1, warp_id=0, pc=0)
        assert dest == 7

    def test_wen_fault_kills_group_write(self):
        plane = FaultPlane()
        pipeline = PipelineRegisters(plane)
        ff = FlipFlop("pipeline", "wb.wen", 1, -1, "control")
        plane.arm(TransientFault(ff, 0, cycle=0, window=5))
        _, _, wen, _, _ = pipeline.latch_writeback(
            list(range(8)), [0] * 8, dest=5, wen=True, group_mask=0xFF,
            warp_mask=(1 << 32) - 1, warp_id=0, pc=0)
        assert not wen

    def test_beat_selector_fault_redirects_reads(self):
        plane = FaultPlane()
        pipeline = PipelineRegisters(plane)
        ctrl = pipeline.latch_decode(_fadd(), 0, 0, 0, 0xFF)
        ff = FlipFlop("pipeline", "de.src_a_sel", 8, -1, "control")
        plane.arm(TransientFault(ff, 1, cycle=0, window=5))
        sel_a, sel_b, _ = pipeline.latch_beat_selectors(ctrl)
        assert sel_a == 3  # 1 ^ (1 << 1)
        assert sel_b == 2

    def test_shadow_bank_fault_decays(self):
        plane = FaultPlane()
        pipeline = PipelineRegisters(plane)
        ff = FlipFlop("pipeline", "s1.de.opcode", 8, -1, "control")
        fault = TransientFault(ff, 0, cycle=0, window=2)
        plane.arm(fault)
        ctrl = pipeline.latch_decode(_fadd(), 0, 0, 0, 0xFF)
        assert ctrl.opcode is Opcode.FADD  # shadow flip changed nothing
        assert fault.fired  # it did land, on the shadow copy

    def test_bubble_latch_consumes_pending_fault(self):
        plane = FaultPlane()
        pipeline = PipelineRegisters(plane)
        ff = FlipFlop("pipeline", "de.src_a", 32, 3, "data")
        fault = TransientFault(ff, 5, cycle=0, window=2)
        plane.arm(fault)
        pipeline.latch_bubble()
        assert fault.fired  # landed in a bubble: discarded (masked)
