"""Program container / builder tests."""

import pytest

from repro.gpu.isa import CompareOp, Opcode, Predicate
from repro.gpu.program import ProgramBuilder


def _simple_builder():
    b = ProgramBuilder("demo")
    b.mov(1, b.imm(7))
    b.iadd(2, 1, b.imm(1))
    b.exit()
    return b


class TestBuilder:
    def test_build_and_index(self):
        program = _simple_builder().build()
        assert len(program) == 3
        assert program[0].opcode is Opcode.MOV
        assert program[2].opcode is Opcode.EXIT

    def test_program_must_end_with_exit(self):
        b = ProgramBuilder()
        b.nop()
        with pytest.raises(ValueError):
            b.build()

    def test_undefined_branch_target_rejected(self):
        b = ProgramBuilder()
        b.bra("nowhere")
        b.exit()
        with pytest.raises(ValueError):
            b.build()

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("spot")
        with pytest.raises(ValueError):
            b.label("spot")

    def test_label_resolution(self):
        b = ProgramBuilder()
        b.mov(1, b.imm(0))
        b.label("loop")
        b.iadd(1, 1, b.imm(1))
        b.iset(Predicate(0), 1, b.imm(5), CompareOp.LT)
        b.bra("loop", predicate=Predicate(0))
        b.exit()
        program = b.build()
        assert program.resolve("loop") == 1

    def test_unknown_label_raises(self):
        program = _simple_builder().build()
        with pytest.raises(KeyError):
            program.resolve("missing")

    def test_opcode_histogram(self):
        program = _simple_builder().build()
        histogram = program.opcode_histogram()
        assert histogram[Opcode.MOV] == 1
        assert histogram[Opcode.IADD] == 1

    def test_max_register(self):
        program = _simple_builder().build()
        assert program.max_register() == 2

    def test_plain_int_means_register(self):
        b = ProgramBuilder()
        b.fadd(3, 1, 2)
        b.exit()
        program = b.build()
        from repro.gpu.isa import OperandKind

        assert program[0].srcs[0].kind is OperandKind.REGISTER

    def test_bad_operand_type_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(TypeError):
            b.fadd(1, "not-an-operand", 2)
