"""SM behavioural edge cases beyond the core instruction tests."""

import math

import pytest

from repro.errors import MemoryFaultError, RegisterFaultError
from repro.gpu import Opcode, SMConfig, StreamingMultiprocessor
from repro.gpu.bits import bits_to_float, float_to_bits
from repro.gpu.isa import CompareOp, Instruction, Predicate, Register
from repro.gpu.program import ProgramBuilder


@pytest.fixture
def sm():
    return StreamingMultiprocessor()


class TestPredicatedExecution:
    def test_predicated_arithmetic_skips_inactive_threads(self, sm):
        b = ProgramBuilder("pred-arith")
        b.mov(2, b.imm(5))
        b.iset(Predicate(1), 0, b.imm(4), CompareOp.GE)
        b.emit(Instruction(Opcode.IADD, Register(2),
                           (Register(2), Register(2)),
                           predicate=Predicate(1)))
        b.gst(0, 2, offset=0x300)
        b.exit()
        result = sm.launch(b.build(), 8)
        words = result.memory.read_words(0x300, 8)
        assert words == [5, 5, 5, 5, 10, 10, 10, 10]

    def test_negated_predicate(self, sm):
        b = ProgramBuilder("pred-neg")
        b.mov(2, b.imm(1))
        b.iset(Predicate(0), 0, b.imm(4), CompareOp.LT)
        b.emit(Instruction(Opcode.MOV, Register(2), (b.imm(9),),
                           predicate=Predicate(0), predicate_negated=True))
        b.gst(0, 2, offset=0x300)
        b.exit()
        result = sm.launch(b.build(), 8)
        assert result.memory.read_words(0x300, 8) == [1] * 4 + [9] * 4


class TestAddressingForms:
    def test_gld_immediate_address(self, sm):
        b = ProgramBuilder("imm-addr")
        from repro.gpu.isa import Immediate

        b.emit(Instruction(Opcode.GLD, Register(2), (Immediate(0x42),)))
        b.gst(0, 2, offset=0x300)
        b.exit()
        result = sm.launch(b.build(), 4, memory_image={0x42: [77]})
        assert result.memory.read_words(0x300, 4) == [77] * 4

    def test_gst_register_data(self, sm):
        b = ProgramBuilder("store")
        b.imul(2, 0, 0)           # tid^2
        b.gst(0, 2, offset=0x300)
        b.exit()
        result = sm.launch(b.build(), 6)
        assert result.memory.read_words(0x300, 6) == \
            [i * i for i in range(6)]

    def test_wild_store_address_is_memory_fault(self, sm):
        b = ProgramBuilder("wild")
        b.mov(2, b.imm(0x7FFFFFFF))
        b.gst(2, 0)
        b.exit()
        with pytest.raises(MemoryFaultError):
            sm.launch(b.build(), 4)


class TestMultiWarp:
    def test_full_occupancy_256_threads(self, sm):
        b = ProgramBuilder("many")
        b.iadd(2, 0, b.imm(1000))
        b.gst(0, 2, offset=0x400)
        b.exit()
        result = sm.launch(b.build(), 256)
        words = result.memory.read_words(0x400, 256)
        assert words == [tid + 1000 for tid in range(256)]

    def test_partial_tail_warp(self, sm):
        b = ProgramBuilder("tail")
        b.gst(0, 0, offset=0x400)
        b.exit()
        result = sm.launch(b.build(), 70)  # 2 full warps + 6 threads
        assert result.memory.read_words(0x400, 70) == list(range(70))

    def test_sixteen_lane_configuration(self):
        sm = StreamingMultiprocessor(SMConfig(n_lanes=16))
        b = ProgramBuilder("wide")
        b.fmul(2, 0, 0)
        b.exit()
        result = sm.launch(b.build(), 64)
        assert result.cycles > 0


class TestLaunchReuse:
    def test_memory_isolated_between_launches(self, sm):
        b = ProgramBuilder("writer")
        b.gst(0, 0, offset=0x500)
        b.exit()
        sm.launch(b.build(), 8)
        b2 = ProgramBuilder("reader")
        b2.gld(2, 0, offset=0x500)
        b2.gst(0, 2, offset=0x600)
        b2.exit()
        result = sm.launch(b2.build(), 8)
        assert result.memory.read_words(0x600, 8) == [0] * 8

    def test_different_programs_back_to_back(self, sm):
        programs = []
        for scale in (2, 3):
            b = ProgramBuilder(f"x{scale}")
            b.imul(2, 0, b.imm(scale))
            b.gst(0, 2, offset=0x300)
            b.exit()
            programs.append(b.build())
        first = sm.launch(programs[0], 4)
        second = sm.launch(programs[1], 4)
        assert first.memory.read_words(0x300, 4) == [0, 2, 4, 6]
        assert second.memory.read_words(0x300, 4) == [0, 3, 6, 9]


class TestIsetDestinations:
    def test_register_destination_writes_flag(self, sm):
        b = ProgramBuilder("iset-reg")
        b.iset(b.reg(2), 0, b.imm(3), CompareOp.EQ)
        b.gst(0, 2, offset=0x300)
        b.exit()
        result = sm.launch(b.build(), 6)
        assert result.memory.read_words(0x300, 6) == [0, 0, 0, 1, 0, 0]

    def test_float_inputs_via_fp_compare_program(self, sm):
        # float ordering via ISET on raw bits only works for positives;
        # this documents the int-compare semantics of the opcode
        small = float_to_bits(1.0)
        large = float_to_bits(2.0)
        assert small < large  # positive float order == int order


class TestNumericCornersThroughPrograms:
    def test_fp32_accumulation_order_is_sequential(self, sm):
        b = ProgramBuilder("acc")
        b.gld(2, 0, offset=0x100)
        b.fadd(3, 2, 2)
        b.fadd(3, 3, 2)          # 3x, sequential dependency
        b.gst(0, 3, offset=0x300)
        b.exit()
        image = {0x100: [float_to_bits(0.1)] * 4}
        result = sm.launch(b.build(), 4, memory_image=image)
        import numpy as np

        expected = float(np.float32(np.float32(0.1) + np.float32(0.1))
                         + np.float32(0.1))
        assert result.memory.read_floats(0x300, 4) == [expected] * 4

    def test_infinity_propagates_to_output(self, sm):
        b = ProgramBuilder("inf")
        b.gld(2, 0, offset=0x100)
        b.fmul(3, 2, 2)
        b.gst(0, 3, offset=0x300)
        b.exit()
        image = {0x100: [float_to_bits(3e38)] * 2}
        result = sm.launch(b.build(), 2, memory_image=image)
        assert all(math.isinf(v)
                   for v in result.memory.read_floats(0x300, 2))
