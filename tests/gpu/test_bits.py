"""Bit-level utility tests."""

import math
import struct

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu import bits


class TestFloatConversions:
    def test_known_values(self):
        assert bits.float_to_bits(1.0) == 0x3F800000
        assert bits.float_to_bits(-2.0) == 0xC0000000
        assert bits.float_to_bits(0.0) == 0x00000000

    def test_negative_zero(self):
        assert bits.float_to_bits(-0.0) == 0x80000000

    def test_infinities(self):
        assert bits.float_to_bits(float("inf")) == 0x7F800000
        assert bits.float_to_bits(float("-inf")) == 0xFF800000

    def test_rounds_to_single_precision(self):
        # 1 + 2^-30 is not representable in binary32
        assert bits.bits_to_float(bits.float_to_bits(1.0 + 2**-30)) == 1.0

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_from_bits(self, pattern):
        value = bits.bits_to_float(pattern)
        if math.isnan(value):
            assert bits.is_nan_bits(pattern)
        else:
            assert bits.float_to_bits(value) == pattern

    @given(st.floats(width=32, allow_nan=False))
    def test_roundtrip_from_float(self, value):
        assert bits.bits_to_float(bits.float_to_bits(value)) == value


class TestIntConversions:
    @given(st.integers(min_value=-2**31, max_value=2**31 - 1))
    def test_roundtrip(self, value):
        assert bits.bits_to_int(bits.int_to_bits(value)) == value

    def test_wraparound(self):
        assert bits.int_to_bits(-1) == 0xFFFFFFFF
        assert bits.bits_to_int(0x80000000) == -2**31

    def test_modulo_semantics(self):
        assert bits.int_to_bits(2**32 + 5) == 5


class TestBitManipulation:
    def test_flip_bit(self):
        assert bits.flip_bit(0, 0) == 1
        assert bits.flip_bit(1, 0) == 0
        assert bits.flip_bit(0, 31) == 0x80000000

    def test_flip_bit_out_of_range(self):
        with pytest.raises(ValueError):
            bits.flip_bit(0, 32)
        with pytest.raises(ValueError):
            bits.flip_bit(0, -1)

    def test_flip_bits_multiple(self):
        assert bits.flip_bits(0, [0, 1, 2]) == 7

    @given(st.integers(0, 2**32 - 1), st.integers(0, 31))
    def test_flip_is_involution(self, value, bit):
        assert bits.flip_bit(bits.flip_bit(value, bit), bit) == value

    def test_bit_diff(self):
        assert bits.bit_diff(0b1010, 0b0110) == [2, 3]
        assert bits.bit_diff(5, 5) == []

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
    def test_bit_diff_matches_popcount(self, a, b):
        assert len(bits.bit_diff(a, b)) == bits.count_set_bits(a ^ b)

    def test_fields(self):
        value = 0xDEADBEEF
        field = bits.extract_field(value, 8, 8)
        assert field == 0xBE
        assert bits.insert_field(value, 8, 8, 0x42) == 0xDEAD42EF

    def test_sign_extend(self):
        assert bits.sign_extend(0xFF, 8) == -1
        assert bits.sign_extend(0x7F, 8) == 127


class TestFp32Fields:
    def test_unpack_pack_roundtrip(self):
        pattern = bits.float_to_bits(-3.25)
        sign, exp, mant = bits.unpack_fp32(pattern)
        assert sign == 1
        assert bits.pack_fp32(sign, exp, mant) == pattern

    def test_special_detection(self):
        assert bits.is_inf_bits(0x7F800000)
        assert bits.is_nan_bits(0x7FC00000)
        assert not bits.is_nan_bits(0x7F800000)
        assert not bits.is_inf_bits(bits.float_to_bits(1.0))


class TestRelativeError:
    def test_exact_match(self):
        assert bits.relative_error(2.0, 2.0) == 0.0

    def test_doubling_is_100_percent(self):
        assert bits.relative_error(2.0, 4.0) == pytest.approx(1.0)

    def test_zero_expected_uses_absolute(self):
        assert bits.relative_error(0.0, 3.0) == 3.0

    def test_nan_and_inf_map_to_inf(self):
        assert bits.relative_error(1.0, float("nan")) == math.inf
        assert bits.relative_error(1.0, float("inf")) == math.inf

    @given(st.floats(min_value=1e-6, max_value=1e6),
           st.floats(min_value=-1e6, max_value=1e6))
    def test_symmetric_in_observation_sign_magnitude(self, expected, obs):
        err = bits.relative_error(expected, obs)
        assert err >= 0.0
