"""Extended-opcode tests (shifts, logic, RCP, conversions)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import Opcode, StreamingMultiprocessor, assemble
from repro.gpu.bits import bits_to_float, bits_to_int, float_to_bits, int_to_bits
from repro.gpu.fault_plane import FaultPlane
from repro.gpu.intu import IntUnit
from repro.gpu.program import ProgramBuilder
from repro.gpu.sfu import SfuDatapath

int32s = st.integers(min_value=-2**31, max_value=2**31 - 1)


class TestIntUnitExtensions:
    @given(int32s, st.integers(0, 31))
    @settings(max_examples=150)
    def test_shl_matches_int32(self, a, shift):
        unit = IntUnit(FaultPlane())
        got = unit.shl(int_to_bits(a), shift, 0)
        assert got == (int_to_bits(a) << shift) & 0xFFFFFFFF

    @given(int32s, st.integers(0, 31))
    @settings(max_examples=150)
    def test_shr_is_logical(self, a, shift):
        unit = IntUnit(FaultPlane())
        got = unit.shr(int_to_bits(a), shift, 0)
        assert got == int_to_bits(a) >> shift

    def test_shift_amount_masked_to_5_bits(self):
        unit = IntUnit(FaultPlane())
        assert unit.shl(1, 33, 0) == 2  # 33 & 31 == 1

    @given(int32s, int32s)
    @settings(max_examples=100)
    def test_logic_ops(self, a, b):
        unit = IntUnit(FaultPlane())
        ua, ub = int_to_bits(a), int_to_bits(b)
        assert unit.lop("AND", ua, ub, 0) == ua & ub
        assert unit.lop("OR", ua, ub, 0) == ua | ub
        assert unit.lop("XOR", ua, ub, 0) == ua ^ ub

    def test_unknown_logic_rejected(self):
        unit = IntUnit(FaultPlane())
        with pytest.raises(ValueError):
            unit.lop("NAND", 1, 2, 0)


class TestSfuReciprocal:
    @given(st.floats(min_value=1e-30, max_value=1e30))
    @settings(max_examples=200)
    def test_rcp_accuracy(self, x):
        unit = SfuDatapath(FaultPlane(), 0)
        got = bits_to_float(unit.compute(Opcode.RCP, float_to_bits(x)))
        assert got == pytest.approx(1.0 / np.float32(x), rel=1e-5)

    def test_rcp_negative(self):
        unit = SfuDatapath(FaultPlane(), 0)
        got = bits_to_float(unit.compute(Opcode.RCP, float_to_bits(-4.0)))
        assert got == pytest.approx(-0.25, rel=1e-6)

    def test_rcp_specials(self):
        unit = SfuDatapath(FaultPlane(), 0)
        assert bits_to_float(
            unit.compute(Opcode.RCP, float_to_bits(0.0))) == math.inf
        assert bits_to_float(
            unit.compute(Opcode.RCP, float_to_bits(-0.0))) == -math.inf
        assert bits_to_float(
            unit.compute(Opcode.RCP, 0x7F800000)) == 0.0
        assert math.isnan(bits_to_float(
            unit.compute(Opcode.RCP, 0x7FC00000)))


class TestSmExecution:
    def test_extended_ops_in_program(self):
        b = ProgramBuilder("ext")
        b.mov(1, b.imm(0b1100))
        b.shl(2, 1, b.imm(2))            # 0b110000
        b.shr(3, 2, b.imm(4))            # 0b11
        b.lop_xor(4, 2, 3)               # 0b110011
        b.lop_and(5, 4, b.imm(0xF0))     # 0b110000
        b.lop_or(6, 5, b.imm(1))         # 0b110001
        b.gst(0, 6, offset=0x300)
        b.exit()
        sm = StreamingMultiprocessor()
        result = sm.launch(b.build(), 4)
        assert result.memory.read_words(0x300, 4) == [0b110001] * 4

    def test_conversions_roundtrip(self):
        b = ProgramBuilder("conv")
        b.i2f(2, 0)          # float(tid)
        b.rcp(3, 2)          # 1/tid (inf for tid 0)
        b.f2i(4, 2)          # back to int
        b.gst(0, 4, offset=0x300)
        b.exit()
        sm = StreamingMultiprocessor()
        result = sm.launch(b.build(), 8)
        assert result.memory.read_words(0x300, 8) == list(range(8))

    def test_rcp_through_sfu_controller(self):
        b = ProgramBuilder("rcp")
        b.gld(2, 0, offset=0x100)
        b.rcp(3, 2)
        b.gst(0, 3, offset=0x300)
        b.exit()
        sm = StreamingMultiprocessor()
        values = [1.0, 2.0, 4.0, 8.0]
        image = {0x100: [float_to_bits(v) for v in values]}
        result = sm.launch(b.build(), 4, memory_image=image)
        out = result.memory.read_floats(0x300, 4)
        assert out == pytest.approx([1.0, 0.5, 0.25, 0.125], rel=1e-5)

    def test_assembler_supports_extended_mnemonics(self):
        program = assemble(
            "SHL R2, R0, 3\nLOP.AND R3, R2, 0xFF\nRCP R4, R3\n"
            "I2F R5, R0\nF2I R6, R5\nEXIT")
        assert program[0].opcode is Opcode.SHL
        assert program[1].opcode is Opcode.LOP_AND
        assert program[2].opcode is Opcode.RCP

    def test_extended_roundtrip_disassembly(self):
        from repro.gpu.asm import disassemble

        program = assemble(
            "SHR R2, R0, 4\nLOP.XOR R3, R2, R0\nRCP R4, R3\nEXIT")
        again = assemble(disassemble(program))
        assert again.instructions == program.instructions


class TestOpsLayerExtensions:
    def test_profiled_but_not_injectable(self):
        from repro.swfi.ops import SassOps

        ops = SassOps()
        ops.rcp(np.ones(5, np.float32))
        ops.shl(np.ones(3, np.int32), 2)
        assert ops.counts[Opcode.RCP] == 5
        assert ops.counts[Opcode.SHL] == 3
        assert ops.injectable_total == 0  # extended ops are not targets

    def test_semantics(self):
        from repro.swfi.ops import SassOps

        ops = SassOps()
        assert ops.rcp(np.float32(4.0)) == pytest.approx(0.25)
        assert ops.shl(np.int32(3), np.int32(2)) == 12
        assert ops.shr(np.int32(-1), np.int32(28)) == 15
        assert ops.lop_xor(np.int32(0b101), np.int32(0b110)) == 0b011
        assert ops.f2i(np.float32(7.9)) == 7
        assert ops.i2f(np.int32(-3)) == -3.0

    def test_extended_ops_count_as_others_in_profile(self):
        from repro.swfi.ops import SassOps
        from repro.swfi.profiler import InstructionProfile

        ops = SassOps()
        ops.fadd(np.ones(60, np.float32), 1.0)
        ops.rcp(np.ones(40, np.float32))
        profile = InstructionProfile("x", ops.profile(), ops.other_count)
        fractions = profile.group_fractions()
        assert fractions["Others"] == pytest.approx(0.4)
        assert profile.characterized_coverage == pytest.approx(0.6)
