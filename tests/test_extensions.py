"""Tests for the paper-described extensions.

Covers the signal-burst transients, ECC-off register-file injection (the
memory-fault-equals-bit-flip validation), per-register attribution, the
module-weighted syndrome cocktail, and multi-thread software injection.
"""

import numpy as np
import pytest

from repro.analysis.attribution import (
    attribute_outcomes,
    kind_share,
    rank_by,
    render_attribution,
)
from repro.gpu import Opcode, SMConfig, StreamingMultiprocessor
from repro.gpu.fault_plane import FlipFlop, TransientFault
from repro.rng import make_rng
from repro.rtl import RTLInjector, make_microbenchmark, run_campaign
from repro.rtl.classify import Outcome
from repro.rtl.faultlist import generate_fault_list
from repro.swfi import (
    ModuleWeightedSyndrome,
    RelativeErrorSyndrome,
    SoftwareInjector,
    run_pvf_campaign,
)
from repro.swfi.ops import SassOps
from repro.apps import MatrixMultiply


class TestSignalBursts:
    def test_mask_covers_burst(self):
        ff = FlipFlop("fp32", "reg", 16, 0, "data")
        fault = TransientFault(ff, bit=4, cycle=0, n_bits=3)
        assert fault.mask == 0b0000_0000_0111_0000

    def test_span_past_register_top_rejected(self):
        ff = FlipFlop("fp32", "reg", 8, 0, "data")
        with pytest.raises(ValueError, match="span"):
            TransientFault(ff, bit=6, cycle=0, n_bits=8)
        fault = TransientFault(ff, bit=6, cycle=0, n_bits=2)
        assert fault.mask == 0b1100_0000

    def test_invalid_burst_rejected(self):
        ff = FlipFlop("fp32", "reg", 8, 0, "data")
        with pytest.raises(ValueError):
            TransientFault(ff, 0, 0, n_bits=0)

    def test_fault_list_mixes_bursts_and_single_flips(self, injector):
        injector.run_golden(make_microbenchmark(Opcode.FADD, "M", seed=1))
        faults = generate_fault_list(
            injector.plane, "fp32", 400, total_cycles=50, seed=2,
            signal_fraction=0.5)
        widths = {f.n_bits for f in faults}
        assert 1 in widths and max(widths) > 1

    def test_zero_signal_fraction_is_single_bit(self, injector):
        injector.run_golden(make_microbenchmark(Opcode.FADD, "M", seed=1))
        faults = generate_fault_list(
            injector.plane, "fp32", 100, total_cycles=50, seed=2,
            signal_fraction=0.0)
        assert all(f.n_bits == 1 for f in faults)


class TestEccOffRegisterFile:
    @pytest.fixture(scope="class")
    def ecc_off_injector(self):
        return RTLInjector(
            StreamingMultiprocessor(SMConfig(ecc_enabled=False)))

    def test_memory_fault_syndrome_is_pure_bit_flip(self, ecc_off_injector):
        """The paper's Fig. 1 premise: a memory-cell fault translates
        directly into a bit-flipped value — no not-obvious syndrome."""
        bench = make_microbenchmark(Opcode.FADD, "M", seed=3)
        golden = ecc_off_injector.run_golden(bench)
        plane = ecc_off_injector.plane
        # target the register holding the stored result (R5) directly:
        # its corruption reaches the output with no further operations
        result_cells = [ff for ff in plane.flipflops("register_file")
                        if ff.name == "r5"]
        sdcs = 0
        rng = make_rng(6)
        for cell in result_cells[:48]:
            fault = TransientFault(cell, int(rng.integers(32)),
                                   cycle=int(rng.integers(golden.cycles)))
            result = ecc_off_injector.inject(bench, golden, fault)
            if result.outcome is Outcome.SDC:
                sdcs += 1
                assert all(v.n_flipped_bits == 1 for v in result.corrupted)
                assert all(v.thread == cell.lane
                           for v in result.corrupted)
        assert sdcs > 0

    def test_ecc_on_register_file_not_injectable(self, injector):
        bench = make_microbenchmark(Opcode.FADD, "M", seed=3)
        injector.run_golden(bench)
        from repro.errors import CampaignError

        with pytest.raises(CampaignError):
            generate_fault_list(injector.plane, "register_file", 10, 100)


class TestAttribution:
    @pytest.fixture(scope="class")
    def attributions(self, injector):
        bench = make_microbenchmark(Opcode.FADD, "M", seed=1)
        report = run_campaign(bench, "pipeline", 1200, seed=9,
                              injector=injector)
        return attribute_outcomes([report])

    def test_counts_add_up(self, attributions):
        assert sum(a.n_injections for a in attributions) == 1200

    def test_kind_share_of_multi_thread_sdc(self, attributions):
        shares = kind_share(attributions, "multi")
        if sum(shares.values()) > 0:
            assert shares.get("control", 0.0) >= shares.get("data", 0.0)

    def test_injection_share_tracks_bit_population(self, attributions):
        shares = kind_share(attributions, "injections")
        # pipeline control is ~14% of bits
        assert 0.05 <= shares.get("control", 0.0) <= 0.3

    def test_ranking(self, attributions):
        worst = rank_by(attributions, "due", top=5)
        assert all(w.n_due > 0 for w in worst)
        assert worst == sorted(worst, key=lambda e: e.n_due, reverse=True)
        with pytest.raises(ValueError):
            rank_by(attributions, "bogus")

    def test_render(self, attributions):
        text = render_attribution(attributions)
        assert "top DUE sources" in text
        assert "pipeline." in text


class TestSpanInjection:
    def test_span_corrupts_adjacent_elements(self):
        def corrupt(opcode, golden, operands, is_float):
            return 99.0

        ops = SassOps(target=2, corruptor=corrupt, span=3)
        result = ops.fadd(np.zeros(10, np.float32), np.zeros(10, np.float32))
        assert list(np.nonzero(result == 99.0)[0]) == [2, 3, 4]
        assert ops.n_corrupted == 3

    def test_span_crosses_op_boundaries(self):
        def corrupt(opcode, golden, operands, is_float):
            return 7.0

        ops = SassOps(target=3, corruptor=corrupt, span=4)
        first = ops.fadd(np.zeros(4, np.float32), np.zeros(4, np.float32))
        second = ops.fadd(np.zeros(4, np.float32), np.zeros(4, np.float32))
        assert list(first) == [0, 0, 0, 7]
        assert list(second) == [7, 7, 7, 0]

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            SassOps(span=0)

    def test_multi_thread_model_spans(self, small_database):
        model = RelativeErrorSyndrome(small_database, multi_thread=True)
        rng = make_rng(0)
        spans = {model.sample_span(rng) for _ in range(100)}
        assert spans  # draws from observed thread counts
        assert all(s >= 1 for s in spans)
        single = RelativeErrorSyndrome(small_database)
        assert single.sample_span(rng) == 1

    def test_multi_thread_pvf_at_least_single(self, small_database):
        app = MatrixMultiply(n=16, tile=8, seed=0)
        injector = SoftwareInjector(app)
        single = run_pvf_campaign(
            app, RelativeErrorSyndrome(small_database), 60, seed=1,
            injector=injector)
        multi = run_pvf_campaign(
            app, RelativeErrorSyndrome(small_database, multi_thread=True),
            60, seed=1, injector=injector)
        assert multi.pvf >= single.pvf - 0.05


class TestModuleWeightedSyndrome:
    def test_runs_and_differs_from_uniform(self, small_database):
        app = MatrixMultiply(n=16, tile=8, seed=0)
        model = ModuleWeightedSyndrome(small_database)
        report = run_pvf_campaign(app, model, 40, seed=2)
        assert report.n_injections == 40
        assert report.model_name == "module-weighted"

    def test_custom_weights_pin_module(self, small_database):
        model = ModuleWeightedSyndrome(
            small_database, weights={"fp32": 1.0})
        rng = make_rng(3)
        value = model.corrupt(Opcode.FADD, 2.0, (1.0, 1.0), True, rng)
        assert value != 2.0
        assert model.module is None  # restored after each corruption
